"""Reference (seed) implementations of the CFG-layer analyses.

The dense analysis core re-hosted :class:`repro.cfg.dominators.DominatorTree`,
:func:`repro.cfg.loops.is_reducible` and :class:`repro.cfg.loops.LoopNest` on
``array('i')`` rows over int node indices.  This module preserves the seed's
dict-of-nodes implementations verbatim, as equivalence oracles for the
property suite (``tests/dataflow/test_dense_equivalence.py``) and as the
measured baseline of the ``analysis`` section of
``benchmarks/perf/run_pipeline_bench.py``.

:func:`reference_cfg_analyses` patches the dense implementations out for the
duration of a ``with`` block, following the context-manager pattern of
:mod:`repro.pdg.reference`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable

from .digraph import Digraph
from .loops import Loop, back_edges, natural_loop

Node = Hashable


class DominatorTreeReference:
    """Immediate-dominator tree of the subgraph reachable from ``root``.

    Verbatim seed implementation: Cooper-Harvey-Kennedy over dicts keyed
    by node objects.
    """

    def __init__(self, graph: Digraph, root: Node):
        self.root = root
        self._rpo = graph.rpo(root)
        self._index = {node: i for i, node in enumerate(self._rpo)}
        self._idom: dict[Node, Node] = {root: root}
        self._compute(graph)
        self._children: dict[Node, list[Node]] = {n: [] for n in self._rpo}
        for node in self._rpo:
            if node != root:
                self._children[self._idom[node]].append(node)
        # depth of each node in the dominator tree, for O(depth) queries
        self._depth: dict[Node, int] = {root: 0}
        for node in self._rpo[1:]:
            self._depth[node] = self._depth[self._idom[node]] + 1

    def _compute(self, graph: Digraph) -> None:
        index = self._index
        idom = self._idom

        def intersect(a: Node, b: Node) -> Node:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in self._rpo[1:]:
                processed = [p for p in graph.preds(node)
                             if p in idom and p in index]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """All nodes reachable from the root, in reverse postorder."""
        return list(self._rpo)

    def idom(self, node: Node) -> Node | None:
        """Immediate dominator (``None`` for the root)."""
        if node == self.root:
            return None
        return self._idom[node]

    def children(self, node: Node) -> list[Node]:
        return list(self._children[node])

    def depth(self, node: Node) -> int:
        return self._depth[node]

    def dominates(self, a: Node, b: Node) -> bool:
        """Does ``a`` dominate ``b``?  (Reflexive: a node dominates itself.)"""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        return a == b

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, node: Node) -> list[Node]:
        """All dominators of ``node``, from the node up to the root."""
        out = [node]
        while node != self.root:
            node = self._idom[node]
            out.append(node)
        return out


def is_reducible_reference(graph: Digraph, dom) -> bool:
    """Seed reducibility test: copy the graph minus back edges, toposort."""
    backs = set(back_edges(graph, dom))
    forward = Digraph()
    for node in graph.nodes:
        forward.add_node(node)
    for edge in graph.edges():
        if edge not in backs:
            forward.add_edge(*edge)
    try:
        forward.topological_order(dom.root)
    except ValueError:
        return False
    return True


class LoopNestReference:
    """The loop nesting forest of a CFG (seed set-per-loop implementation)."""

    def __init__(self, graph: Digraph, dom):
        self.graph = graph
        self.dom = dom
        self.loops: list[Loop] = []
        self._loop_of_header: dict[Node, Loop] = {}
        self._build()

    def _build(self) -> None:
        by_header: dict[Node, Loop] = {}
        # the backward body walk can pull in forward-unreachable
        # predecessors; clamp to nodes the dominator tree knows about
        reachable = set(self.dom.nodes)
        for latch, header in back_edges(self.graph, self.dom):
            body = natural_loop(self.graph, latch, header) & reachable
            if header in by_header:
                by_header[header].body |= body
                by_header[header].latches.append(latch)
            else:
                by_header[header] = Loop(header, body, [latch])
        self.loops = sorted(by_header.values(), key=lambda l: len(l.body))
        self._loop_of_header = by_header
        # nest: each loop's parent is the smallest strictly-containing loop
        for i, inner in enumerate(self.loops):
            for outer in self.loops[i + 1:]:
                if inner.header in outer.body and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    # -- queries ---------------------------------------------------------

    @property
    def top_level(self) -> list[Loop]:
        return [l for l in self.loops if l.parent is None]

    def loop_with_header(self, header: Node) -> Loop | None:
        return self._loop_of_header.get(header)

    def innermost_containing(self, node: Node) -> Loop | None:
        """The smallest loop whose body contains ``node``."""
        best: Loop | None = None
        for loop in self.loops:  # sorted by body size ascending
            if node in loop.body:
                best = loop
                break
        return best

    def loops_innermost_first(self) -> list[Loop]:
        """All loops ordered so every loop precedes its ancestors."""
        order: list[Loop] = []
        seen: set[int] = set()

        def visit(loop: Loop) -> None:
            for child in loop.children:
                visit(child)
            if id(loop) not in seen:
                seen.add(id(loop))
                order.append(loop)

        for loop in self.top_level:
            visit(loop)
        return order

    def __repr__(self) -> str:
        return f"<LoopNestReference {len(self.loops)} loops>"


def _cfg_reference_patches() -> list[tuple]:
    """(module, attribute, reference value) triples restoring the seed
    CFG analyses; shared by :func:`reference_cfg_analyses` and the full
    :func:`repro.pdg.reference.seed_pipeline`."""
    from ..dataflow import cache as dataflow_cache
    from ..sched import regions as sched_regions
    from ..xform import ctr as xform_ctr
    from ..xform import strength as xform_strength
    from . import dominators as dominators_mod

    return [
        (dominators_mod, "_IMPL", DominatorTreeReference),
        (dataflow_cache, "LoopNest", LoopNestReference),
        (sched_regions, "LoopNest", LoopNestReference),
        (sched_regions, "is_reducible", is_reducible_reference),
        (xform_strength, "LoopNest", LoopNestReference),
        (xform_ctr, "LoopNest", LoopNestReference),
    ]


@contextmanager
def reference_cfg_analyses():
    """Run with the seed dominator/loop/reducibility implementations."""
    patches = _cfg_reference_patches()
    saved = [(mod, name, getattr(mod, name)) for mod, name, _ in patches]
    for mod, name, value in patches:
        setattr(mod, name, value)
    try:
        yield
    finally:
        for mod, name, value in saved:
            setattr(mod, name, value)
