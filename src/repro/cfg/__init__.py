"""Control-flow-graph analyses: CFG construction, dominators, loops."""

from .digraph import Digraph
from .dominators import DominatorTree, dominator_tree, postdominator_tree
from .graph import ENTRY, EXIT, ControlFlowGraph
from .loops import Loop, LoopNest, back_edges, is_reducible, natural_loop

__all__ = [
    "ControlFlowGraph",
    "Digraph",
    "DominatorTree",
    "ENTRY",
    "EXIT",
    "Loop",
    "LoopNest",
    "back_edges",
    "dominator_tree",
    "is_reducible",
    "natural_loop",
    "postdominator_tree",
]
