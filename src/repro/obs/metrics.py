"""Per-phase counters, timers, and the paper-style scheduling report.

:class:`MetricsCollector` is the mutable aggregation point the pipeline
and scheduler feed; like the tracer, every hot-path site guards with
``if metrics.enabled:`` so the :data:`NULL_METRICS` default costs one
attribute load.  Collectors merge, so fuzz campaigns can fold per-program
summaries into campaign totals (and workers can ship summaries back as
plain dicts).

:func:`format_stats` renders the "what did the scheduler do" report in
the shape of the paper's evaluation tables: motions by kind per pass,
speculation accounting (considered / vetoed / renamed / accepted),
ready-list pressure, and schedule length per region and block.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager


class NullMetrics:
    """No-op collector; the scheduler's default."""

    enabled = False

    def inc(self, name: str, n: int = 1) -> None:  # pragma: no cover - dead
        pass

    def observe(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    @contextmanager
    def phase(self, name: str):
        yield


#: process-wide default (stateless, safe to share)
NULL_METRICS = NullMetrics()


class MetricsCollector:
    """Counters + phase timers + value-series observations."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.timers: dict[str, float] = {}
        #: name -> (count, total, max)
        self.series: dict[str, tuple[int, float, float]] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def observe(self, name: str, value: float) -> None:
        count, total, peak = self.series.get(name, (0, 0.0, 0.0))
        self.series[name] = (count + 1, total + value, max(peak, value))

    @contextmanager
    def phase(self, name: str):
        """Time a pipeline phase; elapsed seconds accumulate per name."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = (self.timers.get(name, 0.0)
                                 + time.perf_counter() - started)

    # -- aggregation ---------------------------------------------------------

    def mean(self, name: str) -> float:
        count, total, _peak = self.series.get(name, (0, 0.0, 0.0))
        return total / count if count else 0.0

    def peak(self, name: str) -> float:
        return self.series.get(name, (0, 0.0, 0.0))[2]

    def merge(self, other: "MetricsCollector") -> None:
        self.counters.update(other.counters)
        for name, secs in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + secs
        for name, (count, total, peak) in other.series.items():
            mine = self.series.get(name, (0, 0.0, 0.0))
            self.series[name] = (mine[0] + count, mine[1] + total,
                                 max(mine[2], peak))

    def summary(self) -> dict:
        """A flat, JSON-ready snapshot (fuzz workers return these)."""
        return {
            "counters": dict(self.counters),
            "timers_ms": {k: round(v * 1e3, 3)
                          for k, v in self.timers.items()},
            "series": {
                name: {"n": count, "mean": round(total / count, 3),
                       "max": peak}
                for name, (count, total, peak) in self.series.items()
                if count
            },
        }


# -- the paper-style report --------------------------------------------------

def _motion_row(label: str, motions) -> str:
    useful = sum(1 for m in motions if not m.speculative and not m.duplicated)
    spec = sum(1 for m in motions if m.speculative)
    dup = sum(1 for m in motions if m.duplicated)
    return (f"  {label:<18}{len(motions):>7}{useful:>8}"
            f"{spec:>13}{dup:>12}")


def format_stats(title: str, machine_name: str, level_name: str,
                 units, metrics: "MetricsCollector | None" = None) -> str:
    """Render the scheduling report.

    ``units`` is an iterable of ``(function_name, PipelineReport)`` pairs
    (duck-typed: only ``first_pass``/``second_pass``/``bb_cycles``/
    ``motions``/``elapsed_seconds`` are touched).  ``metrics`` supplies the
    counters the reports cannot carry (vetoes, renames, ready pressure,
    phase timers); it may be None when only motion tables are wanted.
    """
    lines = [f"== scheduling report: {title} "
             f"(machine {machine_name}, level {level_name}) =="]
    for name, report in units:
        lines.append("")
        lines.append(f"function {name}  "
                     f"({report.elapsed_seconds * 1e3:.1f} ms)")
        final_rung = getattr(report, "final_rung", None)
        if final_rung is not None:
            degradations = getattr(report, "degradations", ())
            suffix = (f"  ({len(degradations)} degradation event"
                      f"{'s' if len(degradations) != 1 else ''})"
                      if degradations else "")
            lines.append(f"  resilience rung: {final_rung}{suffix}")
        lines.append(f"  {'pass':<18}{'motions':>7}{'useful':>8}"
                     f"{'speculative':>13}{'duplicated':>12}")
        first = report.first_pass.motions if report.first_pass else []
        second = report.second_pass.motions if report.second_pass else []
        lines.append(_motion_row("first (inner)", first))
        lines.append(_motion_row("second (outer)", second))
        lines.append(_motion_row("total", list(first) + list(second)))
        for sweep_name, sweep in (("first", report.first_pass),
                                  ("second", report.second_pass)):
            if sweep is None:
                continue
            for region in sweep.regions:
                cycles = ", ".join(f"{label} {n}"
                                   for label, n in region.block_cycles.items())
                lines.append(f"  {sweep_name} pass region {region.header}: "
                             f"{cycles}")
        if report.bb_cycles:
            total = sum(report.bb_cycles.values())
            lines.append(f"  post-pass block cycles: {total} total over "
                         f"{len(report.bb_cycles)} blocks")

    if metrics is not None:
        c = metrics.counters
        considered = c.get("sched.candidates.speculative", 0)
        accepted = c.get("sched.motions.speculative", 0)
        total_motions = (accepted + c.get("sched.motions.useful", 0)
                         + c.get("sched.motions.duplicated", 0))
        lines.append("")
        lines.append("speculation")
        lines.append(f"  speculative candidates collected "
                     f"{considered:>6}")
        lines.append(f"  vetoed by live-on-exit rule      "
                     f"{c.get('sched.speculation.rejected_live', 0):>6}")
        lines.append(f"  admitted by renaming             "
                     f"{c.get('sched.speculation.renamed', 0):>6}")
        lines.append(f"  speculative motions performed    {accepted:>6}")
        if total_motions:
            lines.append(f"  speculation rate                 "
                         f"{accepted / total_motions:>6.1%}  "
                         f"({accepted}/{total_motions} motions)")
        ready_n = metrics.series.get("sched.ready", (0, 0.0, 0.0))[0]
        if ready_n:
            lines.append("")
            lines.append(f"ready-list pressure  avg {metrics.mean('sched.ready'):.2f}"
                         f"  max {metrics.peak('sched.ready'):.0f}"
                         f"  over {ready_n} cycles")
        scans = c.get("sched.queue.scan_points", 0)
        if scans:
            rows = (
                ("readiness scan points", scans),
                ("candidate visits, seed full scan",
                 c.get("sched.queue.seed_scan_visits", 0)),
                ("ready pushes", c.get("sched.queue.ready_pushes", 0)),
                ("heap pops (issues)", c.get("sched.queue.heap_pops", 0)),
                ("speculative veto re-checks",
                 c.get("sched.queue.veto_rechecks", 0)),
                ("timing-wheel holds", c.get("sched.queue.wheel_holds", 0)),
                ("liveness re-flags", c.get("sched.queue.liveness_flags", 0)),
                ("queue rebuilds (graph mutated)",
                 c.get("sched.queue.rebuilds", 0)),
            )
            lines.append("")
            lines.append("scheduler inner loop (event-driven ready queue)")
            for label, count in rows:
                lines.append(f"  {label:<33}{count:>6}")
            seed_visits = c.get("sched.queue.seed_scan_visits", 0)
            event_visits = sum(c.get(f"sched.queue.{k}", 0)
                               for k in ("ready_pushes", "heap_pops",
                                         "veto_rechecks", "wheel_holds",
                                         "liveness_flags"))
            if seed_visits > event_visits:
                lines.append(f"  scan work avoided                "
                             f"{1 - event_visits / seed_visits:>6.1%}  "
                             f"({event_visits}/{seed_visits} candidate "
                             f"visits)")
        packed = c.get("sched.soa.packed_keys", 0)
        if packed:
            interns = metrics.series.get("sched.soa.intern_ms", (0, 0.0, 0.0))
            soa_rows = (
                ("priority keys packed to ints", packed),
                ("dense-table bytes interned",
                 c.get("sched.soa.dense_bytes", 0)),
                ("liveness queries from bitmask",
                 c.get("sched.soa.mask_queries", 0)),
                ("liveness bitmask updates",
                 c.get("sched.soa.mask_updates", 0)),
            )
            lines.append("")
            lines.append("struct-of-arrays core")
            for label, count in soa_rows:
                lines.append(f"  {label:<33}{count:>6}")
            if interns[0]:
                lines.append(f"  interning passes                 "
                             f"{interns[0]:>6}  "
                             f"({interns[1]:.2f} ms total, "
                             f"max {interns[2]:.2f} ms)")
        tables = c.get("analysis.dense.tables", 0)
        if tables:
            dense_rows = (
                ("register interning tables", tables),
                ("registers interned", c.get("analysis.dense.regs_interned",
                                             0)),
                ("CSR CFG snapshots", c.get("analysis.dense.cfg_builds", 0)),
                ("use/def mask builds", c.get("analysis.dense.usedef_builds",
                                              0)),
                ("use/def mask cache hits",
                 c.get("analysis.dense.usedef_hits", 0)),
                ("liveness bitmask solves",
                 c.get("analysis.dense.liveness_solves", 0)),
            )
            lines.append("")
            lines.append("dense analysis core")
            for label, count in dense_rows:
                lines.append(f"  {label:<33}{count:>6}")
        resilience = {name: count for name, count in sorted(c.items())
                      if name.startswith("resilience.") and count}
        if resilience:
            lines.append("")
            lines.append("resilience")
            for name, count in resilience.items():
                label = name[len("resilience."):].replace("_", " ")
                lines.append(f"  {label:<33}{count:>6}")
        if metrics.timers:
            lines.append("")
            lines.append("phase times (ms)  " + "  ".join(
                f"{name} {secs * 1e3:.1f}"
                for name, secs in metrics.timers.items()))
    return "\n".join(lines)
