"""Chrome-trace (``chrome://tracing`` / Perfetto) export.

Converts a stream of :mod:`repro.obs.events` into the Trace Event Format
(the ``{"traceEvents": [...]}`` JSON that Perfetto and chrome://tracing
load directly).  The exported timeline is *synthetic and deterministic*:
one scheduler cycle maps to one millisecond, and a global cursor advances
as block passes complete, so the same compilation always produces the
same trace file.

Lane layout:

* ``tid 0`` -- the pipeline: function/phase/region frames, block-pass
  slices, motion and speculation-veto instants;
* one lane per functional-unit type (allocated on first use) -- every
  issued instruction is a slice whose length is its execution time;
* a ``ready-list`` counter track shows the per-cycle candidate pressure.
"""

from __future__ import annotations

import json
from typing import Iterable

from .events import TraceEvent

#: one scheduler cycle, in trace microseconds (1 cycle = 1 ms on screen)
CYCLE_US = 1000

_PID = 1


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the Trace Event Format document for ``events``."""
    out: list[dict] = [{
        "ph": "M", "pid": _PID, "name": "process_name",
        "args": {"name": "repro scheduler"},
    }, {
        "ph": "M", "pid": _PID, "tid": 0, "name": "thread_name",
        "args": {"name": "pipeline"},
    }]
    cursor = 0          # global synthetic clock, microseconds
    block_start = 0     # where the current block pass began
    last_issue_ts = 0
    unit_lane: dict[str, int] = {}

    def lane(unit: str) -> int:
        tid = unit_lane.get(unit)
        if tid is None:
            tid = len(unit_lane) + 1
            unit_lane[unit] = tid
            out.append({
                "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
                "args": {"name": f"unit {unit}"},
            })
        return tid

    def begin(name: str, cat: str, **args) -> None:
        out.append({"ph": "B", "pid": _PID, "tid": 0, "ts": cursor,
                    "name": name, "cat": cat, "args": args})

    def end() -> None:
        out.append({"ph": "E", "pid": _PID, "tid": 0, "ts": cursor})

    def instant(name: str, cat: str, ts: int, **args) -> None:
        out.append({"ph": "i", "pid": _PID, "tid": 0, "ts": ts, "s": "t",
                    "name": name, "cat": cat, "args": args})

    for ev in events:
        kind = ev.kind
        if kind == "function_begin":
            begin(f"function {ev.function}", "function", level=ev.level)
        elif kind == "function_end":
            cursor += 1
            end()
        elif kind == "phase_begin":
            begin(ev.phase, "phase", function=ev.function)
        elif kind == "phase_end":
            cursor += 1
            end()
        elif kind == "region_enter":
            begin(f"region {ev.header}", "region",
                  kind=ev.region_kind, blocks=list(ev.blocks))
        elif kind == "region_exit":
            cursor += 1
            end()
        elif kind == "region_skipped":
            instant(f"region {ev.header} skipped: {ev.reason}",
                    "region", cursor, reason=ev.reason)
        elif kind == "block_begin":
            block_start = cursor
        elif kind == "block_end":
            out.append({
                "ph": "X", "pid": _PID, "tid": 0, "ts": block_start,
                "dur": ev.cycles * CYCLE_US, "name": f"block {ev.label}",
                "cat": "block", "args": {"cycles": ev.cycles},
            })
            cursor = block_start + ev.cycles * CYCLE_US
        elif kind == "cycle":
            out.append({
                "ph": "C", "pid": _PID, "ts": block_start + ev.cycle * CYCLE_US,
                "name": "ready-list", "args": {"ready": ev.ready},
            })
        elif kind == "issue":
            ts = block_start + ev.cycle * CYCLE_US
            last_issue_ts = ts
            out.append({
                "ph": "X", "pid": _PID, "tid": lane(ev.unit), "ts": ts,
                "dur": max(ev.exec_cycles, 1) * CYCLE_US,
                "name": f"I{ev.uid} {ev.opcode}", "cat": "issue",
                "args": {"block": ev.label, "home": ev.home,
                         "class": ev.klass, "cycle": ev.cycle},
            })
        elif kind == "motion":
            instant(f"I{ev.uid} {ev.opcode} {ev.src}->{ev.dst}", "motion",
                    last_issue_ts, speculative=ev.speculative,
                    duplicated_into=list(ev.duplicated_into))
        elif kind == "spec_rejected":
            instant(f"I{ev.uid} {ev.opcode} vetoed (live-on-exit)",
                    "speculation", cursor,
                    block=ev.label, home=ev.home, regs=list(ev.regs))
        elif kind == "spec_renamed":
            instant(f"I{ev.uid} {ev.opcode} renamed to admit motion",
                    "speculation", cursor,
                    block=ev.label, home=ev.home, regs=list(ev.regs))
        # candidate/priority events carry no timeline position of their own

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], target) -> None:
    """Write the Chrome-trace JSON for ``events`` (path or text stream)."""
    doc = chrome_trace(events)
    if isinstance(target, (str, bytes)):
        with open(target, "w") as handle:
            json.dump(doc, handle)
    else:
        json.dump(doc, target)
