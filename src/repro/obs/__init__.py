"""Scheduler observability: decision traces, metrics, exporters.

The layer has three parts, wired through the whole compile->schedule
pipeline via ``PipelineConfig(trace=..., metrics=...)``:

* :mod:`repro.obs.events` -- the typed event taxonomy;
* :mod:`repro.obs.tracer` -- the :class:`Tracer` protocol with a no-op
  default, a JSONL sink and an in-memory collector;
* :mod:`repro.obs.chrome` -- the Chrome-trace / Perfetto exporter;
* :mod:`repro.obs.metrics` -- counters/timers and the paper-style
  ``python -m repro stats`` report.
"""

from .chrome import chrome_trace, write_chrome_trace
from .events import EVENT_TYPES, TraceEvent, event_from_dict
from .metrics import NULL_METRICS, MetricsCollector, NullMetrics, format_stats
from .tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    TeeTracer,
    Tracer,
    dump_jsonl,
    read_jsonl,
)

__all__ = [
    "EVENT_TYPES",
    "TraceEvent",
    "event_from_dict",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
    "TeeTracer",
    "read_jsonl",
    "dump_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "MetricsCollector",
    "NullMetrics",
    "NULL_METRICS",
    "format_stats",
]
