"""Tracer protocol and sinks.

The scheduler's hot paths guard every emission with ``if tracer.enabled:``
so the default :data:`NULL_TRACER` costs one attribute load and a falsy
branch per site -- events are never even constructed.  Real sinks:

* :class:`CollectingTracer` -- in-memory event list (tests, the ``stats``
  command's conformance checks);
* :class:`JsonlTracer` -- one ``to_dict`` JSON object per line, the
  on-disk interchange format (``--trace-out``);
* both accept every event type; sinks never interpret events.

Traces are deterministic by construction: no wall-clock timestamps are
recorded except the ``elapsed_ms`` of phase/function end events, and those
are excluded from golden comparisons.  Event order is the emission order
(a single scheduler thread), so a trace is replayable and diffable.
"""

from __future__ import annotations

import io
import json
from typing import Iterable, Iterator, Protocol, runtime_checkable

from .events import TraceEvent, event_from_dict


@runtime_checkable
class Tracer(Protocol):
    """Anything that accepts trace events.

    ``enabled`` is the hot-path guard: emitters must skip event
    construction entirely when it is False.
    """

    enabled: bool

    def emit(self, event: TraceEvent) -> None: ...


class NullTracer:
    """The no-op default: never enabled, drops everything."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - dead
        pass

    def close(self) -> None:
        pass


#: process-wide default sink (stateless, safe to share)
NULL_TRACER = NullTracer()


class CollectingTracer:
    """Keeps every event in memory, in emission order."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class JsonlTracer:
    """Streams events to a JSON-Lines file (or any text stream)."""

    enabled = True

    def __init__(self, target):
        """``target``: a path string or an open text stream."""
        if isinstance(target, (str, bytes)):
            self._stream = open(target, "w")
            self._owns = True
        else:
            self._stream = target
            self._owns = False

    def emit(self, event: TraceEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(),
                                      separators=(",", ":")))
        self._stream.write("\n")

    def close(self) -> None:
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeTracer:
    """Fans every event out to several sinks (e.g. JSONL + in-memory)."""

    enabled = True

    def __init__(self, *sinks: Tracer):
        self.sinks = sinks

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def read_jsonl(source) -> Iterator[TraceEvent]:
    """Parse a JSONL trace back into typed events.

    ``source``: a path, an open text stream, or an iterable of lines.
    """
    if isinstance(source, (str, bytes)):
        with open(source) as handle:
            yield from _parse_lines(handle)
    else:
        yield from _parse_lines(source)


def _parse_lines(lines: Iterable[str]) -> Iterator[TraceEvent]:
    for line in lines:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def dump_jsonl(events: Iterable[TraceEvent], target) -> None:
    """Write typed events as a JSONL trace (path or text stream)."""
    if isinstance(target, (str, bytes)):
        with open(target, "w") as handle:
            dump_jsonl(events, handle)
        return
    assert isinstance(target, io.TextIOBase) or hasattr(target, "write")
    for event in events:
        target.write(json.dumps(event.to_dict(), separators=(",", ":")))
        target.write("\n")
