"""Typed trace events of the scheduler observability layer.

Every decision the compile->schedule->verify pipeline makes is describable
as one of the small, flat event records below.  Events are plain frozen
dataclasses: cheap to construct, trivially serialisable (``to_dict`` yields
JSON-ready dictionaries whose ``"ev"`` key is the event kind), and stable
enough to diff in golden tests.

The taxonomy follows the paper's own vocabulary:

* pipeline shape -- :class:`FunctionBegin`/:class:`FunctionEnd` and
  :class:`PhaseBegin`/:class:`PhaseEnd` for the Section 6 stages;
* region walk -- :class:`RegionEnter`/:class:`RegionExit`/
  :class:`RegionSkipped` (the Section 6 policy filters name their reason);
* per-block scheduling -- :class:`BlockBegin`/:class:`BlockEnd`,
  :class:`CandidateBlocksComputed` (``EQUIV(A)`` and the speculative part
  of ``C(A)``), :class:`CandidatesCollected`;
* the cycle-driven inner loop -- :class:`CycleAdvance` (ready-list
  pressure), :class:`Issue`, :class:`UnitOccupancy`,
  :class:`PriorityDecision` (which step of the Section 5.2 rule decided);
* legality -- :class:`SpeculationRejected` (the Section 5.3 live-on-exit
  veto, with the blocking registers), :class:`SpeculationRenamed`
  (Section 4.2 renaming admitted the motion);
* outcomes -- :class:`MotionRecorded`;
* resilience -- :class:`DegradationEvent` (the fail-soft pipeline skipped
  a pass or fell down a degradation-ladder rung);
* service -- :class:`SupervisorEvent` (the compile service's pool
  supervisor lost/replaced workers, rebuilt the pool, or tripped the
  circuit breaker) and :class:`AdmissionEvent` (load shedding started or
  stopped at the queue watermarks).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar


@dataclass(frozen=True)
class TraceEvent:
    """Base of all trace events; subclasses set :attr:`kind`."""

    kind: ClassVar[str] = "?"

    def to_dict(self) -> dict:
        """JSON-ready representation: ``{"ev": kind, **fields}``."""
        out: dict = {"ev": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


# -- pipeline shape ----------------------------------------------------------

@dataclass(frozen=True)
class FunctionBegin(TraceEvent):
    kind: ClassVar[str] = "function_begin"
    function: str
    level: str


@dataclass(frozen=True)
class FunctionEnd(TraceEvent):
    kind: ClassVar[str] = "function_end"
    function: str
    elapsed_ms: float


@dataclass(frozen=True)
class PhaseBegin(TraceEvent):
    kind: ClassVar[str] = "phase_begin"
    function: str
    phase: str


@dataclass(frozen=True)
class PhaseEnd(TraceEvent):
    kind: ClassVar[str] = "phase_end"
    function: str
    phase: str
    elapsed_ms: float


# -- region walk -------------------------------------------------------------

@dataclass(frozen=True)
class RegionEnter(TraceEvent):
    kind: ClassVar[str] = "region_enter"
    header: str
    region_kind: str
    level: str
    blocks: tuple[str, ...]


@dataclass(frozen=True)
class RegionExit(TraceEvent):
    kind: ClassVar[str] = "region_exit"
    header: str
    motions: int
    speculative_motions: int


@dataclass(frozen=True)
class RegionSkipped(TraceEvent):
    kind: ClassVar[str] = "region_skipped"
    header: str
    #: "irreducible" | "too-large" | "too-deep" | "empty" | "filtered"
    reason: str


# -- per-block scheduling ----------------------------------------------------

@dataclass(frozen=True)
class BlockBegin(TraceEvent):
    kind: ClassVar[str] = "block_begin"
    label: str
    carry_cycles: int | None


@dataclass(frozen=True)
class BlockEnd(TraceEvent):
    kind: ClassVar[str] = "block_end"
    label: str
    cycles: int


@dataclass(frozen=True)
class CandidateBlocksComputed(TraceEvent):
    """``EQUIV(A)`` and the speculative members of ``C(A)`` for block A."""

    kind: ClassVar[str] = "candidate_blocks"
    label: str
    equiv: tuple[str, ...]
    speculative: tuple[str, ...]


@dataclass(frozen=True)
class CandidatesCollected(TraceEvent):
    kind: ClassVar[str] = "candidates"
    label: str
    own: int
    useful: int
    speculative: int
    duplication: int


# -- the cycle-driven inner loop ---------------------------------------------

@dataclass(frozen=True)
class CycleAdvance(TraceEvent):
    """One scheduling cycle opened with ``ready`` issuable candidates."""

    kind: ClassVar[str] = "cycle"
    label: str
    cycle: int
    ready: int


@dataclass(frozen=True)
class Issue(TraceEvent):
    kind: ClassVar[str] = "issue"
    label: str
    cycle: int
    uid: int
    opcode: str
    unit: str
    home: str
    #: "own" | "useful" | "speculative" | "duplicated"
    klass: str
    exec_cycles: int


@dataclass(frozen=True)
class UnitOccupancy(TraceEvent):
    """Functional-unit slots consumed during one cycle of one block pass."""

    kind: ClassVar[str] = "units"
    label: str
    cycle: int
    used: dict
    issued: int


@dataclass(frozen=True)
class PriorityDecision(TraceEvent):
    """Two ready candidates competed; ``step`` names the Section 5.2 rule
    component that separated the winner from the runner-up."""

    kind: ClassVar[str] = "priority"
    label: str
    cycle: int
    winner_uid: int
    runner_up_uid: int
    step: str


# -- legality ----------------------------------------------------------------

@dataclass(frozen=True)
class SpeculationRejected(TraceEvent):
    """The Section 5.3 live-on-exit rule vetoed a speculative motion."""

    kind: ClassVar[str] = "spec_rejected"
    label: str
    uid: int
    opcode: str
    home: str
    #: textual names of the registers live on exit that the motion clobbers
    regs: tuple[str, ...]


@dataclass(frozen=True)
class SpeculationRenamed(TraceEvent):
    """Section 4.2 on-demand renaming admitted a vetoed motion after all."""

    kind: ClassVar[str] = "spec_renamed"
    label: str
    uid: int
    opcode: str
    home: str
    regs: tuple[str, ...]


# -- outcomes ----------------------------------------------------------------

@dataclass(frozen=True)
class MotionRecorded(TraceEvent):
    kind: ClassVar[str] = "motion"
    uid: int
    opcode: str
    src: str
    dst: str
    speculative: bool
    duplicated_into: tuple[str, ...]


# -- resilience --------------------------------------------------------------

@dataclass(frozen=True)
class DegradationEvent(TraceEvent):
    """The fail-soft pipeline absorbed a fault: a pass was skipped in
    place or the whole function fell to a lower ladder rung (see
    :mod:`repro.resilience`)."""

    kind: ClassVar[str] = "degradation"
    function: str
    #: where the fault surfaced: ``"pass:<phase>"`` or ``"pipeline"``
    site: str
    #: "pass-skipped" | "rung-descent"
    action: str
    from_rung: str
    to_rung: str
    #: "exception" | "timeout" | "verify-failed" | "injected"
    reason: str
    #: one-line description of the underlying fault
    detail: str


# -- service ----------------------------------------------------------------

@dataclass(frozen=True)
class SupervisorEvent(TraceEvent):
    """The service supervisor acted on the worker pool (see
    :mod:`repro.service.supervisor`)."""

    kind: ClassVar[str] = "supervisor"
    #: "worker-lost" | "worker-hung" | "pool-rebuilt" | "breaker-tripped"
    action: str
    #: pool rebuilds so far (including this one, for "pool-rebuilt")
    rebuilds: int
    #: jobs in flight when the supervisor acted
    inflight: int
    #: one-line description of what was observed
    detail: str


@dataclass(frozen=True)
class AdmissionEvent(TraceEvent):
    """The service crossed an admission-control watermark (see
    :mod:`repro.service.daemon`)."""

    kind: ClassVar[str] = "admission"
    #: "shed-start" | "shed-stop"
    action: str
    #: queued-request depth that triggered the transition
    depth: int
    high_water: int
    low_water: int


#: every concrete event type, keyed by its ``kind`` tag
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        FunctionBegin, FunctionEnd, PhaseBegin, PhaseEnd,
        RegionEnter, RegionExit, RegionSkipped,
        BlockBegin, BlockEnd, CandidateBlocksComputed, CandidatesCollected,
        CycleAdvance, Issue, UnitOccupancy, PriorityDecision,
        SpeculationRejected, SpeculationRenamed, MotionRecorded,
        DegradationEvent, SupervisorEvent, AdmissionEvent,
    )
}


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild a typed event from its :meth:`TraceEvent.to_dict` form."""
    payload = dict(data)
    cls = EVENT_TYPES[payload.pop("ev")]
    for f in fields(cls):
        value = payload.get(f.name)
        if isinstance(value, list):
            payload[f.name] = tuple(value)
    return cls(**payload)
