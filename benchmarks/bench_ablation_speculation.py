"""Ablation: speculation depth (Definition 7 beyond the paper's limit).

The prototype supports "only 1-branch speculative instructions"; deeper
speculation is listed as future work.  The ``max_speculation`` knob
explores it: n-branch speculative candidates gamble on n branches, so
returns should diminish (and can reverse) as n grows on a narrow machine.
"""

import random

from repro import ScheduleLevel, rs6k
from repro.bench import WORKLOADS
from repro.ir import parse_function
from repro.lang import compile_c_functions
from repro.sched import global_schedule, schedule_function_blocks
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

DEPTHS = [0, 1, 2, 3]


def minmax_at_depth(depth):
    func = parse_function(FIGURE2)
    level = ScheduleLevel.USEFUL if depth == 0 else ScheduleLevel.SPECULATIVE
    report = global_schedule(func, rs6k(), level, max_speculation=depth or 1)
    total = sum(simulate_path_iterations(func, p, rs6k())
                for p in MINMAX_PATHS.values())
    return total, len(report.speculative_motions)


def test_speculation_depth_minmax(report, benchmark):
    rows = [f"{'depth':>5} {'cycles(3 paths)':>16} {'spec motions':>13}"]
    results = {}
    for depth in DEPTHS:
        total, motions = minmax_at_depth(depth)
        results[depth] = total
        rows.append(f"{depth:>5} {total:>16} {motions:>13}")
    report("Ablation: n-branch speculation depth on the minmax loop "
           "(paper ships n=1; n>1 is its future work)", "\n".join(rows))
    assert results[1] <= results[0]  # speculation must help here (Fig. 6)
    benchmark(minmax_at_depth, 1)


def test_speculation_depth_li_kernel(report):
    workload = WORKLOADS[0]  # LI-like: the speculation-hungry workload
    args = workload.make_args(random.Random(5))
    rows = [f"{'depth':>5} {'cycles':>9}"]
    cycles_at = {}
    for depth in DEPTHS:
        units = compile_c_functions(workload.source)
        cf = units[workload.entry]
        level = (ScheduleLevel.USEFUL if depth == 0
                 else ScheduleLevel.SPECULATIVE)
        global_schedule(cf.func, rs6k(), level,
                        live_at_exit=cf.live_at_exit,
                        max_speculation=depth or 1)
        schedule_function_blocks(cf.func, rs6k())
        from repro.compiler import CompiledUnit
        from repro.xform import PipelineReport
        unit = CompiledUnit(cf, rs6k(), PipelineReport(level))
        call_args = tuple(list(a) if isinstance(a, list) else a
                          for a in args)
        run = unit.run(*call_args, call_handlers=workload.call_handlers)
        expected = workload.reference(
            *[list(a) if isinstance(a, list) else a for a in args])
        assert run.return_value == expected, f"depth {depth} broke semantics"
        cycles_at[depth] = run.cycles
        rows.append(f"{depth:>5} {run.cycles:>9}")
    report("Ablation: speculation depth on the LI-like kernel",
           "\n".join(rows))
    assert cycles_at[1] < cycles_at[0]
