"""Tracked perf suite for the compile -> schedule -> verify pipeline.

Measures the optimized hot paths against the seed (reference)
implementations kept in :mod:`repro.pdg.reference` and writes one JSON
scorecard, ``BENCH_pipeline.json``, that CI uploads on every push::

    PYTHONPATH=src python benchmarks/perf/run_pipeline_bench.py
    PYTHONPATH=src python benchmarks/perf/run_pipeline_bench.py --quick

Seven metrics, all on a fixed-seed generated corpus (fully reproducible):

* ``region_ddg``   -- region-DDG construction (incl. transitive reduction)
  on the largest region of the largest corpus program: per-block summaries
  + shared-table reduction vs the seed's per-pair rescans + per-source
  heap sweeps.  Gate: >= 2.0x.
* ``analysis``     -- the pre-scheduling analyses alone on the largest
  corpus function, timed as whole *epochs* mirroring the pipeline's
  protocol: the dense arm runs one shared :class:`AnalysisCache` per
  epoch (one CFG, one CSR snapshot, one ``RegTable`` interning pass
  feeding dominators + loop nest, bitmask liveness, mask-native
  reaching queries and bitset interference rows), the reference arm
  recomputes per consumer exactly as the seed pipeline did (each stage
  builds its own ``ControlFlowGraph``; interference re-solves
  liveness).  Gate: aggregate >= 3.0x.
* ``compile``      -- end-to-end ``compile_c`` over a corpus sample, new
  pipeline vs ``seed_pipeline()`` (reference DDG, per-query readiness,
  uncached analyses, seed analysis implementations, the dict-state
  rescan block scheduler, eager verifier formatting).  Gate: >= 3.0x.
* ``schedule``     -- ``global_schedule`` alone on the largest program's
  entry function, same two arms: the event-driven ready queue + bitset
  liveness tracker vs the seed's full-rescan scheduler loop.
  Gate: >= 2.6x.
* ``fuzz``         -- differential fuzz-campaign throughput: optimized
  pipeline with ``--jobs 4`` vs the seed pipeline serially.
  Gate: >= 1.5x.
* ``service_throughput`` -- ``repro serve`` batch throughput with a warm
  content-addressed artifact cache vs compiling the same requests cold
  and serially.  Gate: >= 5.0x.
* ``resilience``   -- overhead of the supervision layer on the inert
  path (no budgets, no fault plan).  Gate: < 2.0% slowdown.

The suite also replays the largest corpus program through both arms at
every scheduling level on every default machine and asserts byte-identical
assembly, with the PR-1 schedule verifier enabled -- a perf number for a
pipeline that schedules differently would be meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

from repro.compiler import compile_c
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.configs import CONFIGS
from repro.pdg.data_deps import build_region_ddg
from repro.pdg.reference import (
    build_region_ddg_reference,
    seed_pipeline,
)
from repro.sched.candidates import ScheduleLevel
from repro.sched.driver import global_schedule
from repro.sched.regions import find_regions
from repro.verify.differential import DEFAULT_MACHINES
from repro.verify.fuzz import derive_seed, fuzz
from repro.verify.generator import generate_program
from repro.xform.pipeline import PipelineConfig

#: campaign master seed -- every number in the scorecard derives from it
MASTER_SEED = 1991

#: acceptance gates (mirrored in ``thresholds`` of the JSON output)
REGION_DDG_MIN_SPEEDUP = 2.0
ANALYSIS_MIN_SPEEDUP = 3.0
COMPILE_MIN_SPEEDUP = 3.0
SCHEDULE_MIN_SPEEDUP = 2.6
FUZZ_MIN_SPEEDUP = 1.5
#: a warm artifact cache answers a batch at least this much faster than
#: compiling the same requests cold, one at a time
SERVICE_MIN_SPEEDUP = 5.0
#: an *inert* resilient pipeline (no budgets, no fault plan) may cost at
#: most this much over the plain pipeline
RESILIENCE_MAX_OVERHEAD_PCT = 2.0


def _best_of(repeats: int, fn) -> float:
    """Best-of-N wall time in seconds (min is the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _corpus(n: int) -> list:
    return [generate_program(derive_seed(MASTER_SEED, i)) for i in range(n)]


def _largest_program(corpus) -> tuple[int, object, object]:
    """(index, program, compiled function) with the most instructions."""
    best = None
    for index, program in enumerate(corpus):
        result = compile_c(program.source, machine=CONFIGS["rs6k"](),
                           level=ScheduleLevel.NONE)
        for unit in result:
            size = sum(len(b.instrs) for b in unit.func.blocks)
            if best is None or size > best[0]:
                best = (size, index, program, unit.func)
    assert best is not None
    return best[1], best[2], best[3]


def bench_region_ddg(func, repeats: int) -> dict:
    """New vs reference region-DDG build on the function's largest region."""
    machine = CONFIGS["rs6k"]()
    regions = find_regions(func)

    best = None
    for spec in regions:
        blocks = [func.block(label) for label in spec.member_labels]
        size = sum(len(b.instrs) for b in blocks)
        if best is None or size > best[0]:
            best = (size, spec, blocks)
    _, spec, blocks = best

    # reachable pairs exactly as RegionPDG derives them (nested loops
    # collapsed to barrier pseudo-blocks), computed once and shared by
    # both arms so only the construction itself is timed
    from repro.sched.regions import build_region_pdg

    pdg = build_region_pdg(func, machine, spec)
    pairs = pdg.reachable_pairs
    ddg_blocks = pdg._ddg_blocks()

    new_s = _best_of(repeats, lambda: build_region_ddg(
        ddg_blocks, pairs, machine))
    ref_s = _best_of(repeats, lambda: build_region_ddg_reference(
        ddg_blocks, pairs, machine))

    new_edges = sorted((e.src.uid, e.dst.uid, e.kind.name, e.delay)
                       for e in build_region_ddg(ddg_blocks, pairs, machine)
                       .iter_edges())
    ref_edges = sorted((e.src.uid, e.dst.uid, e.kind.name, e.delay)
                       for e in build_region_ddg_reference(
                           ddg_blocks, pairs, machine).iter_edges())
    assert new_edges == ref_edges, "optimized DDG diverged from reference"

    return {
        "region_blocks": len(blocks),
        "region_instrs": sum(len(b.instrs) for b in blocks),
        "reachable_pairs": len(pairs),
        "edges": len(new_edges),
        "new_ms": new_s * 1e3,
        "reference_ms": ref_s * 1e3,
        "speedup": ref_s / new_s,
    }


def bench_analysis(func, repeats: int) -> dict:
    """Dense vs seed pre-scheduling analysis epoch on one function.

    One *epoch* is the analysis work of one compile of ``func``:
    dominators + loop nest, liveness (materialized to ``live_out_map``,
    what the scheduler takes), reaching definitions queried at every
    block, and the interference graph down to what the allocator
    colours.  Each arm runs its own end-to-end protocol and delivers
    each fact in its native representation.  The dense arm threads one
    ``AnalysisCache`` through the epoch -- one CFG build, one interning
    pass, one liveness solve shared into interference -- exactly as the
    shipped pipeline and ``allocate_registers`` do, reads reaching facts
    as masks (``reaching_in_mask``) and hands the allocator bitset rows
    (coloring consumes them directly; the adjacency sets never
    materialize).  The reference arm re-derives each consumer's
    prerequisites from the function exactly as the seed pipeline did
    (every stage built its own ``ControlFlowGraph``; interference
    re-solved liveness internally) and delivers its native frozensets
    and adjacency sets.  The equivalence suite pins the two
    representations to each other, so the arms are computing the same
    facts.  Epochs interleave and the gate ratio is best-of epoch
    totals; per-stage numbers are best-of per stage, for the breakdown
    line.
    """
    from repro.cfg.graph import ENTRY, ControlFlowGraph
    from repro.cfg.reference import (
        DominatorTreeReference,
        LoopNestReference,
    )
    from repro.dataflow.cache import AnalysisCache
    from repro.dataflow.reaching import ReachingDefinitions
    from repro.dataflow.reference import (
        ReachingDefinitionsReference,
        compute_liveness_reference,
    )
    from repro.regalloc.interference import build_interference
    from repro.regalloc.reference import build_interference_reference

    repeats = max(repeats, 10)
    labels = [b.label for b in func.blocks]
    none = frozenset()
    perf = time.perf_counter

    def epoch_new() -> list[float]:
        t0 = perf()
        cache = AnalysisCache(func)
        cache.loop_nest()  # builds the CFG and dominator tree too
        t1 = perf()
        cache.liveness(none).live_out_map()
        t2 = perf()
        rd = ReachingDefinitions(func, cache.cfg(), dense=cache.dense_cfg())
        for label in labels:
            rd.reaching_in_mask(label)
        t3 = perf()
        build_interference(func, analyses=cache)
        t4 = perf()
        return [t1 - t0, t2 - t1, t3 - t2, t4 - t3]

    def epoch_ref() -> list[float]:
        t0 = perf()
        cfg = ControlFlowGraph(func)
        LoopNestReference(cfg.graph,
                          DominatorTreeReference(cfg.graph, ENTRY))
        t1 = perf()
        compute_liveness_reference(func, none,
                                   ControlFlowGraph(func)).live_out_map()
        t2 = perf()
        rd = ReachingDefinitionsReference(func, ControlFlowGraph(func))
        for label in labels:
            rd.reaching_in(label)
        t3 = perf()
        build_interference_reference(func)  # derives its own CFG + liveness
        t4 = perf()
        return [t1 - t0, t2 - t1, t3 - t2, t4 - t3]

    stages = ("dominators", "liveness", "reaching", "interference")
    best_new = [float("inf")] * len(stages)
    best_ref = [float("inf")] * len(stages)
    total_new = total_ref = float("inf")
    for _ in range(repeats):
        # interleaved best-of, same rationale as bench_schedule
        ts = epoch_new()
        total_new = min(total_new, sum(ts))
        best_new = [min(a, b) for a, b in zip(best_new, ts)]
        ts = epoch_ref()
        total_ref = min(total_ref, sum(ts))
        best_ref = [min(a, b) for a, b in zip(best_ref, ts)]
    out: dict = {
        "instrs": sum(len(b.instrs) for b in func.blocks),
        "blocks": len(func.blocks),
    }
    for name, new_s, ref_s in zip(stages, best_new, best_ref):
        out[name] = {
            "new_ms": new_s * 1e3,
            "reference_ms": ref_s * 1e3,
            "speedup": ref_s / new_s,
        }
    out["new_ms"] = total_new * 1e3
    out["reference_ms"] = total_ref * 1e3
    out["speedup"] = total_ref / total_new
    return out


def bench_compile(corpus, sample: int, repeats: int) -> dict:
    """End-to-end compile_c over a corpus sample, both arms."""
    sources = [p.source for p in corpus[:sample]]

    def compile_all() -> None:
        for source in sources:
            compile_c(source, machine=CONFIGS["rs6k"](),
                      level=ScheduleLevel.SPECULATIVE)

    new_s = _best_of(repeats, compile_all)
    with seed_pipeline():
        ref_s = _best_of(repeats, compile_all)
    return {
        "programs": len(sources),
        "new_s": new_s,
        "reference_s": ref_s,
        "speedup": ref_s / new_s,
    }


def bench_schedule(func, repeats: int) -> dict:
    """global_schedule alone (parse outside the timer), both arms.

    This is the suite's smallest timed quantity (tens of milliseconds)
    guarding its tightest gate, so it gets a higher best-of floor than
    the multi-second sections -- the extra repeats cost well under a
    second and keep the ratio from being decided by scheduler jitter.
    """
    repeats = max(repeats, 20)
    machine = CONFIGS["rs6k"]()
    text = format_function(func)

    def run() -> None:
        global_schedule(parse_function(text), machine,
                        ScheduleLevel.SPECULATIVE)

    # parsing is timed too, identically in both arms; subtract it out
    parse_s = _best_of(repeats, lambda: parse_function(text))
    # interleave the arms rather than timing them in separate batches:
    # CPU-frequency drift on a shared box then hits both arms alike and
    # cancels out of the ratio instead of deciding it
    new_s = ref_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        new_s = min(new_s, time.perf_counter() - t0)
        with seed_pipeline():
            t0 = time.perf_counter()
            run()
            ref_s = min(ref_s, time.perf_counter() - t0)
    new_s -= parse_s
    ref_s -= parse_s
    return {
        "instrs": sum(len(b.instrs) for b in func.blocks),
        "new_ms": new_s * 1e3,
        "reference_ms": ref_s * 1e3,
        "speedup": ref_s / new_s,
    }


def bench_fuzz(n: int, jobs: int) -> dict:
    """Fuzz-campaign throughput: new pipeline at --jobs N vs seed serial."""
    # one tiny warm-up campaign per arm so imports/pools are paid up front
    fuzz(2, derive_seed(MASTER_SEED, 7001), shrink=False)
    with seed_pipeline():
        fuzz(2, derive_seed(MASTER_SEED, 7001), shrink=False)

    t0 = time.perf_counter()
    report_new = fuzz(n, MASTER_SEED, shrink=False, jobs=jobs)
    new_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with seed_pipeline():
        report_ref = fuzz(n, MASTER_SEED, shrink=False)
    ref_s = time.perf_counter() - t0

    new_failures = [f.index for f in report_new.failures]
    ref_failures = [f.index for f in report_ref.failures]
    assert new_failures == ref_failures, (
        f"fuzz campaigns diverged: {new_failures} vs {ref_failures}")

    return {
        "programs": n,
        "jobs": jobs,
        "failures": len(new_failures),
        "new_s": new_s,
        "seed_s": ref_s,
        "programs_per_s_new": n / new_s,
        "programs_per_s_seed": n / ref_s,
        "speedup": ref_s / new_s,
    }


def bench_service(corpus, sample: int, repeats: int) -> dict:
    """``repro serve`` warm-cache batch throughput vs cold serial compiles.

    The cold arm compiles every request one at a time with no cache --
    what a build loop without the daemon pays on every run.  The warm
    arm answers the same batch from an already-seeded daemon, where
    every response is a content-addressed cache hit; the identity
    assertion pins the hits byte-identical to the compiles that seeded
    them, so the speedup is bought with zero drift.
    """
    from repro.service import Daemon, ServeConfig
    from repro.service import worker as service_worker

    sources = [p.source for p in corpus[:sample]]
    lines = [json.dumps({"id": i, "source": source})
             for i, source in enumerate(sources)]

    def cold_all() -> None:
        for source in sources:
            service_worker.compile_request({
                "source": source, "machine": "rs6k",
                "level": "speculative", "config": {}, "resilient": False})

    cold_s = _best_of(repeats, cold_all)

    with Daemon(ServeConfig(jobs=1,
                            cache_entries=max(64, len(lines)))) as daemon:
        seeded = daemon.serve_batch_lines(lines)   # cold: fills the cache
        warm_s = _best_of(max(repeats, 5),
                          lambda: daemon.serve_batch_lines(lines))
        warm = daemon.serve_batch_lines(lines)
        assert all(r["status"] == "cache-hit" for r in warm), (
            "warm batch was not served from the cache")
        assert ([r["assembly"] for r in warm]
                == [r["assembly"] for r in seeded]), (
            "cache hits diverged from the compiles that seeded them")

    return {
        "requests": len(lines),
        "cold_serial_s": cold_s,
        "warm_batch_s": warm_s,
        "requests_per_s_cold": len(lines) / cold_s,
        "requests_per_s_warm": len(lines) / warm_s,
        "speedup": cold_s / warm_s,
    }


def bench_resilience_overhead(corpus, sample: int, repeats: int) -> dict:
    """Inert resilient pipeline vs plain pipeline, same corpus sample.

    With no budgets and no fault plan the resilience layer costs one
    pristine clone per function plus a few context managers; the gate
    keeps that under :data:`RESILIENCE_MAX_OVERHEAD_PCT`.
    """
    from repro.resilience import ResilienceConfig

    sources = [p.source for p in corpus[:sample]]
    # A single corpus compile is ~tens of ms -- far too small to resolve
    # a 2% gate against scheduler jitter.  Loop it so each timed sample
    # is a few hundred ms, and interleave the arms so drift hits both.
    loops = 10

    def compile_all(config_factory) -> None:
        for _ in range(loops):
            for source in sources:
                compile_c(source, machine=CONFIGS["rs6k"](),
                          level=ScheduleLevel.SPECULATIVE,
                          config=config_factory())

    def plain_config() -> PipelineConfig:
        return PipelineConfig(level=ScheduleLevel.SPECULATIVE)

    def resilient_config() -> PipelineConfig:
        return PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                              resilience=ResilienceConfig())

    compile_all(plain_config)      # warm-up
    compile_all(resilient_config)
    plain_times: list[float] = []
    resilient_times: list[float] = []
    # ABBA ordering cancels linear drift (the suite has been running for
    # a while by now); a collection before each sample keeps GC pauses --
    # the resilient arm allocates a pristine clone per function -- from
    # landing inside one arm's window.
    import gc

    for round_idx in range(max(repeats, 8)):
        arms = [(plain_config, plain_times),
                (resilient_config, resilient_times)]
        if round_idx % 2:
            arms.reverse()
        for config_factory, sink in arms:
            gc.collect()
            started = time.perf_counter()
            compile_all(config_factory)
            sink.append(time.perf_counter() - started)
    plain_s = min(plain_times)
    resilient_s = min(resilient_times)
    # Gate on the *cleanest round's* ratio rather than the ratio of
    # global minima: the two samples of one round run seconds apart under
    # the same host conditions, so their ratio isolates the layer's cost
    # from load that arrives mid-suite; with several rounds, at least one
    # is usually undisturbed.
    raw_overhead_pct = min(
        (r / p - 1.0) * 100.0
        for p, r in zip(plain_times, resilient_times)
    )
    return {
        "programs": len(sources),
        "plain_s": plain_s,
        "resilient_s": resilient_s,
        # The raw delta can dip below zero on a noisy host (the resilient
        # arm winning the timing lottery); an inert layer cannot really
        # have negative cost, so the gate value is floored at zero and
        # the signed measurement is kept alongside for trend tracking.
        "overhead_pct": max(0.0, raw_overhead_pct),
        "raw_overhead_pct": raw_overhead_pct,
    }


def check_schedule_identity(program) -> dict:
    """Both arms must emit byte-identical verified assembly everywhere."""
    compiles = 0
    mismatches = []
    for machine_name in DEFAULT_MACHINES:
        for level in ScheduleLevel:
            config = PipelineConfig(level=level, verify=True)

            def compile_once() -> dict[str, str]:
                result = compile_c(program.source,
                                   machine=CONFIGS[machine_name](),
                                   level=level, config=config)
                return {u.name: u.assembly() for u in result}

            new_asm = compile_once()
            with seed_pipeline():
                ref_asm = compile_once()
            compiles += 2
            if new_asm != ref_asm:
                mismatches.append(f"{machine_name}/{level.value}")
    return {
        "machines": list(DEFAULT_MACHINES),
        "levels": [level.value for level in ScheduleLevel],
        "compiles": compiles,
        "verifier_enabled": True,
        "mismatches": mismatches,
    }


def run(quick: bool, jobs: int) -> dict:
    corpus_size = 20 if quick else 60
    repeats = 2 if quick else 5
    fuzz_n = 6 if quick else 15

    print(f"generating corpus (seed={MASTER_SEED}, n={corpus_size}) ...",
          flush=True)
    corpus = _corpus(corpus_size)
    index, program, func = _largest_program(corpus)
    instrs = sum(len(b.instrs) for b in func.blocks)
    print(f"largest program: index {index}, {instrs} instructions")

    print("checking schedule identity (all machines x levels) ...",
          flush=True)
    identity = check_schedule_identity(program)
    if identity["mismatches"]:
        raise SystemExit(f"schedule identity broken: "
                         f"{identity['mismatches']}")

    print("benchmarking region-DDG construction ...", flush=True)
    region_ddg = bench_region_ddg(func, repeats)
    print(f"  {region_ddg['reference_ms']:.1f} ms -> "
          f"{region_ddg['new_ms']:.1f} ms "
          f"({region_ddg['speedup']:.2f}x)")

    print("benchmarking dense analyses ...", flush=True)
    analysis = bench_analysis(func, repeats)
    print(f"  {analysis['reference_ms']:.1f} ms -> "
          f"{analysis['new_ms']:.1f} ms ({analysis['speedup']:.2f}x)  "
          + "  ".join(f"{name} {analysis[name]['speedup']:.1f}x"
                      for name in ("dominators", "liveness", "reaching",
                                   "interference")))

    print("benchmarking end-to-end compile ...", flush=True)
    compile_res = bench_compile(corpus, sample=3 if quick else 5,
                                repeats=repeats)
    print(f"  {compile_res['reference_s']:.2f} s -> "
          f"{compile_res['new_s']:.2f} s "
          f"({compile_res['speedup']:.2f}x)")

    print("benchmarking global_schedule ...", flush=True)
    schedule = bench_schedule(func, repeats)
    print(f"  {schedule['reference_ms']:.1f} ms -> "
          f"{schedule['new_ms']:.1f} ms ({schedule['speedup']:.2f}x)")

    print(f"benchmarking fuzz throughput (n={fuzz_n}, jobs={jobs}) ...",
          flush=True)
    fuzz_res = bench_fuzz(fuzz_n, jobs)
    print(f"  {fuzz_res['seed_s']:.2f} s -> {fuzz_res['new_s']:.2f} s "
          f"({fuzz_res['speedup']:.2f}x)")

    print("benchmarking warm-cache service throughput ...", flush=True)
    service = bench_service(corpus, sample=8 if quick else 16,
                            repeats=repeats)
    print(f"  {service['cold_serial_s']:.3f} s cold -> "
          f"{service['warm_batch_s']:.3f} s warm "
          f"({service['speedup']:.1f}x)")

    print("benchmarking disabled-resilience overhead ...", flush=True)
    resilience = bench_resilience_overhead(corpus, sample=3 if quick else 5,
                                           repeats=repeats)
    print(f"  {resilience['plain_s']:.2f} s -> "
          f"{resilience['resilient_s']:.2f} s "
          f"({resilience['overhead_pct']:+.2f}%)")

    thresholds = {
        "region_ddg_min_speedup": REGION_DDG_MIN_SPEEDUP,
        "analysis_min_speedup": ANALYSIS_MIN_SPEEDUP,
        "compile_min_speedup": COMPILE_MIN_SPEEDUP,
        "schedule_min_speedup": SCHEDULE_MIN_SPEEDUP,
        "fuzz_min_speedup": FUZZ_MIN_SPEEDUP,
        "service_min_speedup": SERVICE_MIN_SPEEDUP,
        "resilience_max_overhead_pct": RESILIENCE_MAX_OVERHEAD_PCT,
        "region_ddg_ok": region_ddg["speedup"] >= REGION_DDG_MIN_SPEEDUP,
        "analysis_ok": analysis["speedup"] >= ANALYSIS_MIN_SPEEDUP,
        "compile_ok": compile_res["speedup"] >= COMPILE_MIN_SPEEDUP,
        "schedule_ok": schedule["speedup"] >= SCHEDULE_MIN_SPEEDUP,
        "fuzz_ok": fuzz_res["speedup"] >= FUZZ_MIN_SPEEDUP,
        "service_ok": service["speedup"] >= SERVICE_MIN_SPEEDUP,
        "resilience_ok": (resilience["overhead_pct"]
                          < RESILIENCE_MAX_OVERHEAD_PCT),
    }
    return {
        "meta": {
            "suite": "pipeline",
            "master_seed": MASTER_SEED,
            "corpus_size": corpus_size,
            "largest_program_index": index,
            "largest_program_instrs": instrs,
            "quick": quick,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "identity": identity,
        "region_ddg": region_ddg,
        "analysis": analysis,
        "compile": compile_res,
        "schedule": schedule,
        "fuzz": fuzz_res,
        "service_throughput": service,
        "resilience": resilience,
        "thresholds": thresholds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="pipeline perf suite (emits BENCH_pipeline.json)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_pipeline.json"),
                        help="output path (default: repo root)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus / fewer repeats (CI smoke)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the fuzz arm "
                             "(default: 4)")
    args = parser.parse_args(argv)

    results = run(args.quick, args.jobs)
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")

    ok = all(results["thresholds"][k]
             for k in ("region_ddg_ok", "analysis_ok", "compile_ok",
                       "schedule_ok", "fuzz_ok", "service_ok",
                       "resilience_ok"))
    print(f"region_ddg: {results['region_ddg']['speedup']:.2f}x "
          f"(gate {REGION_DDG_MIN_SPEEDUP}x)  "
          f"analysis: {results['analysis']['speedup']:.2f}x "
          f"(gate {ANALYSIS_MIN_SPEEDUP}x)  "
          f"compile: {results['compile']['speedup']:.2f}x "
          f"(gate {COMPILE_MIN_SPEEDUP}x)  "
          f"schedule: {results['schedule']['speedup']:.2f}x "
          f"(gate {SCHEDULE_MIN_SPEEDUP}x)  "
          f"fuzz: {results['fuzz']['speedup']:.2f}x "
          f"(gate {FUZZ_MIN_SPEEDUP}x)  "
          f"service: {results['service_throughput']['speedup']:.1f}x "
          f"(gate {SERVICE_MIN_SPEEDUP}x)  "
          f"resilience: {results['resilience']['overhead_pct']:+.2f}% "
          f"(gate <{RESILIENCE_MAX_OVERHEAD_PCT}%)  -> "
          f"{'OK' if ok else 'BELOW THRESHOLD'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
