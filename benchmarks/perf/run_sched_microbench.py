"""Scheduler inner-loop microbench: SoA engine vs seed scan.

Times the *engine only* -- ``schedule_region`` as invoked by the driver,
no parsing, no region finding, no liveness setup -- on synthetic
programs whose block size scales geometrically, and writes
``BENCH_sched_micro.json``::

    PYTHONPATH=src python benchmarks/perf/run_sched_microbench.py
    PYTHONPATH=src python benchmarks/perf/run_sched_microbench.py --quick

Each size is one C function with a loop body split by a branch, so the
region scheduler sees equivalent *and* speculative candidates; the two
arms are the default struct-of-arrays engine (interned ints, CSR
adjacency, packed priority keys, bitmask liveness) and the preserved
seed inner loop (:func:`repro.sched.reference.reference_scheduler`: full
candidate rescans per issue slot + per-motion liveness traversals).
Both arms schedule freshly parsed copies of the same function and must
agree on the printed schedule before their timings are reported.

The engine is timed through an accumulating wrapper around
``repro.sched.driver.schedule_region`` -- the exact seam the two engines
differ behind -- so the shared fixed costs (parsing, CFG analyses,
region-DDG construction) no longer dilute the ratio the way whole-
``global_schedule`` timing did.

The per-size speedups are **gated**: ``meta.engine`` records which
engine the run measured, and when it is the SoA engine (the default),
any size whose speedup falls below its floor in :data:`GATE_MIN_SPEEDUP`
fails the run with exit status 1.  A run forced onto the scan engine
(``REPRO_SCHED_ENGINE=scan`` -- CI's side-by-side control arm) times
scan-vs-scan and is exempt.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

import repro.sched.driver as drv
from repro.compiler import compile_c
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.configs import CONFIGS
from repro.sched import global_sched
from repro.sched.candidates import ScheduleLevel
from repro.sched.reference import reference_scheduler

#: statements per straight-line chunk, one function per entry; the top
#: size keeps the loop region just under ``regions.MAX_REGION_INSTRS``
#: (a larger region is skipped outright and would time nothing)
SIZES = (4, 8, 16, 24, 30)
SIZES_QUICK = (4, 16, 30)

#: CI regression floors per chunk size, SoA engine only.  Set well below
#: the measured speedups (see README's performance table) so scheduler
#: jitter on loaded runners does not flake the gate, but far above the
#: pre-SoA event engine -- a silent fallback to object-graph storage or
#: a packing regression trips them immediately.
GATE_MIN_SPEEDUP = {4: 1.1, 8: 1.8, 16: 3.0, 24: 6.0, 30: 10.0}


def engine_name() -> str:
    """The engine ``schedule_region`` dispatches to by default."""
    return "soa" if global_sched._ENGINE in ("soa", "event") else "scan"


def make_source(k: int) -> str:
    """A loop whose body holds ~4*k statements across a diamond."""
    decl = [f"        int t{i} = a[i] * {i + 2} + s;" for i in range(k)]
    acc = [f"        s = s + t{i};" for i in range(k)]
    then = [f"            s = s + t{i % k} * 2;" for i in range(k)]
    els = [f"            s = s - t{i % k};" for i in range(k)]
    body = "\n".join(
        decl + acc
        + ["        if (s > n) {"] + then
        + ["        } else {"] + els + ["        }"]
    )
    return (
        "int bench(int a[], int n) {\n"
        "    int s = 0;\n"
        "    int i = 0;\n"
        "    while (i < n) {\n"
        f"{body}\n"
        "        i = i + 1;\n"
        "    }\n"
        "    return s;\n"
        "}\n"
    )


@contextmanager
def region_timer():
    """Accumulate time spent inside ``schedule_region`` calls.

    The driver resolves the symbol through its module global, so
    rebinding ``drv.schedule_region`` intercepts every region of every
    sweep; the accumulator sums them (a function schedules several
    regions per pass)."""
    real = drv.schedule_region
    acc = {"s": 0.0}

    def timed(*args, **kwargs):
        t0 = time.perf_counter()
        try:
            return real(*args, **kwargs)
        finally:
            acc["s"] += time.perf_counter() - t0

    drv.schedule_region = timed
    try:
        yield acc
    finally:
        drv.schedule_region = real


def _best_engine_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        with region_timer() as acc:
            fn()
        best = min(best, acc["s"])
    return best


def bench_size(k: int, repeats: int) -> dict:
    machine = CONFIGS["rs6k"]()
    unit = compile_c(make_source(k), machine=machine,
                     level=ScheduleLevel.NONE)["bench"]
    text = format_function(unit.func)
    instrs = sum(len(b.instrs) for b in unit.func.blocks)

    def run():
        func = parse_function(text)
        drv.global_schedule(func, machine, ScheduleLevel.SPECULATIVE)
        return func

    # both arms must produce the same schedule for the timing to mean
    # anything (the full equivalence proof lives in the test suite)
    soa_out = format_function(run())
    with reference_scheduler():
        scan_out = format_function(run())
    if soa_out != scan_out:
        raise SystemExit(f"engine divergence at size {k}")

    soa_s = _best_engine_of(repeats, run)
    with reference_scheduler():
        scan_s = _best_engine_of(repeats, run)
    return {
        "chunk": k,
        "instrs": instrs,
        "soa_ms": soa_s * 1e3,
        "scan_ms": scan_s * 1e3,
        "speedup": scan_s / soa_s,
    }


def gate(rows: list[dict]) -> list[str]:
    """Regression messages for every row below its floor (SoA arm only)."""
    failures = []
    for row in rows:
        floor = GATE_MIN_SPEEDUP.get(row["chunk"])
        if floor is not None and row["speedup"] < floor:
            failures.append(
                f"chunk {row['chunk']}: speedup {row['speedup']:.2f}x "
                f"below gate floor {floor:.1f}x")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scheduler inner-loop microbench "
                    "(emits BENCH_sched_micro.json)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_sched_micro.json"))
    parser.add_argument("--quick", action="store_true",
                        help="fewer sizes / fewer repeats (CI smoke)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report only, never fail on a floor miss")
    args = parser.parse_args(argv)

    engine = engine_name()
    sizes = SIZES_QUICK if args.quick else SIZES
    repeats = 3 if args.quick else 5
    rows = []
    for k in sizes:
        row = bench_size(k, repeats)
        rows.append(row)
        print(f"  chunk {row['chunk']:3d} ({row['instrs']:4d} instrs): "
              f"scan {row['scan_ms']:8.2f} ms -> {engine} "
              f"{row['soa_ms']:7.2f} ms ({row['speedup']:.2f}x)",
              flush=True)

    gated = engine != "scan" and not args.no_gate
    failures = gate(rows) if gated else []
    results = {
        "meta": {
            "suite": "sched_micro",
            "engine": engine,
            "quick": args.quick,
            "gated": gated,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "gate_min_speedup": {str(k): v for k, v in GATE_MIN_SPEEDUP.items()},
        "sizes": rows,
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not gated:
        print(f"gate skipped (engine={engine})")
    elif failures:
        for message in failures:
            print(f"GATE FAIL: {message}", file=sys.stderr)
        return 1
    else:
        print("gate ok: all sizes at or above their speedup floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
