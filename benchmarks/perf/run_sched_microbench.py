"""Scheduler inner-loop microbench: event-driven queue vs seed scan.

Times ``global_schedule`` alone -- no parsing, no lowering, no register
allocation -- on synthetic programs whose block size scales geometrically,
and writes ``BENCH_sched_micro.json``::

    PYTHONPATH=src python benchmarks/perf/run_sched_microbench.py
    PYTHONPATH=src python benchmarks/perf/run_sched_microbench.py --quick

Each size is one C function with a loop body split by a branch, so the
region scheduler sees equivalent *and* speculative candidates; the two
arms are the default event-driven engine and the preserved seed inner
loop (:func:`repro.sched.reference.reference_scheduler`: full candidate
rescans per issue slot + per-motion liveness traversals).  Both arms
schedule freshly parsed copies of the same function and must agree on
the printed schedule before their timings are reported.

The point of the scaling sweep is the *trend*: the seed scan loop is
quadratic-ish in block size (every issue slot rescans every pending
candidate), the event queue pushes each candidate exactly once, so the
speedup column grows with size before plateauing where the shared
region-DDG construction (identical in both arms here) starts to
dominate the timed window.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

from repro.compiler import compile_c
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.machine.configs import CONFIGS
from repro.sched.candidates import ScheduleLevel
from repro.sched.driver import global_schedule
from repro.sched.reference import reference_scheduler

#: statements per straight-line chunk, one function per entry; the top
#: size keeps the loop region just under ``regions.MAX_REGION_INSTRS``
#: (a larger region is skipped outright and would time nothing)
SIZES = (4, 8, 16, 24, 30)
SIZES_QUICK = (4, 16, 30)


def make_source(k: int) -> str:
    """A loop whose body holds ~4*k statements across a diamond."""
    decl = [f"        int t{i} = a[i] * {i + 2} + s;" for i in range(k)]
    acc = [f"        s = s + t{i};" for i in range(k)]
    then = [f"            s = s + t{i % k} * 2;" for i in range(k)]
    els = [f"            s = s - t{i % k};" for i in range(k)]
    body = "\n".join(
        decl + acc
        + ["        if (s > n) {"] + then
        + ["        } else {"] + els + ["        }"]
    )
    return (
        "int bench(int a[], int n) {\n"
        "    int s = 0;\n"
        "    int i = 0;\n"
        "    while (i < n) {\n"
        f"{body}\n"
        "        i = i + 1;\n"
        "    }\n"
        "    return s;\n"
        "}\n"
    )


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_size(k: int, repeats: int) -> dict:
    machine = CONFIGS["rs6k"]()
    unit = compile_c(make_source(k), machine=machine,
                     level=ScheduleLevel.NONE)["bench"]
    text = format_function(unit.func)
    instrs = sum(len(b.instrs) for b in unit.func.blocks)

    def run():
        func = parse_function(text)
        global_schedule(func, machine, ScheduleLevel.SPECULATIVE)
        return func

    # both arms must produce the same schedule for the timing to mean
    # anything (the full equivalence proof lives in the test suite)
    event_out = format_function(run())
    with reference_scheduler():
        scan_out = format_function(run())
    if event_out != scan_out:
        raise SystemExit(f"engine divergence at size {k}")

    parse_s = _best_of(repeats, lambda: parse_function(text))
    new_s = _best_of(repeats, run) - parse_s
    with reference_scheduler():
        ref_s = _best_of(repeats, run) - parse_s
    return {
        "chunk": k,
        "instrs": instrs,
        "new_ms": new_s * 1e3,
        "reference_ms": ref_s * 1e3,
        "speedup": ref_s / new_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scheduler inner-loop microbench "
                    "(emits BENCH_sched_micro.json)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_sched_micro.json"))
    parser.add_argument("--quick", action="store_true",
                        help="fewer sizes / fewer repeats (CI smoke)")
    args = parser.parse_args(argv)

    sizes = SIZES_QUICK if args.quick else SIZES
    repeats = 3 if args.quick else 5
    rows = []
    for k in sizes:
        row = bench_size(k, repeats)
        rows.append(row)
        print(f"  chunk {row['chunk']:3d} ({row['instrs']:4d} instrs): "
              f"{row['reference_ms']:8.1f} ms -> {row['new_ms']:7.1f} ms "
              f"({row['speedup']:.2f}x)", flush=True)

    results = {
        "meta": {
            "suite": "sched_micro",
            "quick": args.quick,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "sizes": rows,
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
