"""Supervision-overhead gate for the self-healing compile service.

ISSUE 9 satellite: with supervision *on* and the journal *off* -- the
inert, no-faults path every healthy daemon runs -- the daemon may cost
at most 2% over the same daemon with supervision disabled
(``--no-supervise``).  Writes ``BENCH_service.json`` for CI::

    PYTHONPATH=src python benchmarks/perf/run_service_bench.py
    PYTHONPATH=src python benchmarks/perf/run_service_bench.py --quick

Two measurements, both min-of-N (the standard noise filter), both on a
fixed request corpus:

* ``cold``  -- a fresh daemon compiles the full batch through its pool
  (this is where the supervisor's poll-timeout drain loop, PID
  snapshots and in-flight ageing actually run);
* ``warm``  -- the same batch re-served from the content-addressed
  artifact cache (the steady-state serving path).

Both arms serve identical requests and must return identical response
sets -- an overhead number for a daemon that answers differently would
be meaningless.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

from repro.service import Daemon, ServeConfig

#: the acceptance gate, percent
SUPERVISION_MAX_OVERHEAD_PCT = 2.0

JOBS = 4
BATCH = 192


def _lines() -> list[str]:
    out = []
    for i in range(BATCH):
        k = i % (BATCH * 3 // 4)  # a few duplicates, like real traffic
        out.append(json.dumps({
            "id": i,
            "source": f"int s{k}(int a, int b) "
                      f"{{ return a * {k + 2} + b * {k % 5}; }}"}))
    return out


def _prelude() -> list[str]:
    # sources disjoint from the measured corpus: forks the pool and
    # warms the workers without warming the measured cache keys
    return [json.dumps({"id": 1000 + i,
                        "source": f"int warm{i}(int x) {{ return x + {i}; }}"})
            for i in range(JOBS)]


def _config(supervise: bool) -> ServeConfig:
    return ServeConfig(jobs=JOBS, supervise=supervise)


def _cold_once(supervise: bool, lines: list[str]) -> tuple[float, list]:
    with Daemon(_config(supervise)) as daemon:
        daemon.serve_batch_lines(_prelude())
        t0 = time.perf_counter()
        responses = daemon.serve_batch_lines(lines)
        return time.perf_counter() - t0, responses


def bench_cold(repeats: int, lines: list[str]) -> dict:
    samples = {True: [], False: []}
    answers = {}
    for rep in range(repeats):
        # ABBA ordering cancels linear drift (CPU frequency, page
        # cache); gc.collect keeps pauses out of one arm's window
        order = (True, False) if rep % 2 == 0 else (False, True)
        for supervise in order:
            gc.collect()
            elapsed, responses = _cold_once(supervise, lines)
            samples[supervise].append(elapsed)
            answers[supervise] = responses
    assert answers[True] == answers[False], \
        "supervised and raw daemons answered differently"
    return _row("cold", samples)


def bench_warm(repeats: int, lines: list[str]) -> dict:
    samples = {True: [], False: []}
    answers = {}
    daemons = {s: Daemon(_config(s)) for s in (True, False)}
    try:
        for supervise, daemon in daemons.items():
            answers[supervise] = daemon.serve_batch_lines(lines)  # warm it
        for rep in range(repeats):
            order = (True, False) if rep % 2 == 0 else (False, True)
            for supervise in order:
                daemon = daemons[supervise]
                gc.collect()
                t0 = time.perf_counter()
                for _ in range(10):  # one sample = 10 serves, so the
                    daemon.serve_batch_lines(lines)  # timer sees >15ms
                samples[supervise].append(time.perf_counter() - t0)
    finally:
        for daemon in daemons.values():
            daemon.close()
    assert answers[True] == answers[False], \
        "supervised and raw daemons answered differently"
    return _row("warm", samples)


def _row(name: str, samples: dict) -> dict:
    # Gate on the *cleanest round's* ratio, same statistic as the
    # pipeline bench's resilience gate: the two samples of one round run
    # back to back under the same host conditions, so their ratio
    # isolates supervision's cost from load that arrives mid-suite; with
    # several rounds, at least one is usually undisturbed.  Inert
    # supervision cannot really have negative cost, so the gate value is
    # floored at zero; the signed measurement rides along for trends.
    raw_overhead_pct = min(
        (s / r - 1.0) * 100.0
        for s, r in zip(samples[True], samples[False]))
    return {"metric": name,
            "supervised_s": round(min(samples[True]), 6),
            "raw_s": round(min(samples[False]), 6),
            "overhead_pct": round(max(0.0, raw_overhead_pct), 3),
            "raw_overhead_pct": round(raw_overhead_pct, 3)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="supervision-overhead gate for repro serve")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_service.json"))
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (local smoke)")
    args = parser.parse_args(argv)
    cold_repeats = 5 if args.quick else 9
    warm_repeats = 5 if args.quick else 15

    lines = _lines()
    rows = [bench_cold(cold_repeats, lines),
            bench_warm(warm_repeats, lines)]
    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "jobs": JOBS,
        "batch": BATCH,
        "thresholds": {"max_overhead_pct": SUPERVISION_MAX_OVERHEAD_PCT},
        "rows": rows,
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")

    failed = False
    for row in rows:
        verdict = "ok"
        if row["overhead_pct"] >= SUPERVISION_MAX_OVERHEAD_PCT:
            verdict = (f"FAIL (>= {SUPERVISION_MAX_OVERHEAD_PCT}% "
                       f"supervision overhead)")
            failed = True
        print(f"{row['metric']:>5}: supervised {row['supervised_s']:.4f}s"
              f"  raw {row['raw_s']:.4f}s"
              f"  overhead {row['overhead_pct']:+.2f}%"
              f" (signed {row['raw_overhead_pct']:+.2f}%)  {verdict}")
    print(f"wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
