"""Shared fixtures for the benchmark harness.

Every ``bench_fig*.py`` file regenerates one figure/table of the paper:
it prints a paper-vs-measured comparison (through the ``report`` fixture,
which bypasses pytest's capture so the table lands in ``bench_output.txt``)
and benchmarks the computation that produces it.
"""

from __future__ import annotations

import pytest

from repro.ir import Function, parse_function

#: The paper's Figure 2 (see tests/conftest.py for the annotated version).
FIGURE2 = """
function minmax_loop
CL.0:
    (I1)  L     r12=a(r31,4)
    (I2)  LU    r0,r31=a(r31,8)
    (I3)  C     cr7=r12,r0
    (I4)  BF    CL.4,cr7,0x2/gt
BL2:
    (I5)  C     cr6=r12,r30
    (I6)  BF    CL.6,cr6,0x2/gt
BL3:
    (I7)  LR    r30=r12
CL.6:
    (I8)  C     cr7=r0,r28
    (I9)  BF    CL.9,cr7,0x1/lt
BL5:
    (I10) LR    r28=r0
    (I11) B     CL.9
CL.4:
    (I12) C     cr6=r0,r30
    (I13) BF    CL.11,cr6,0x2/gt
BL7:
    (I14) LR    r30=r0
CL.11:
    (I15) C     cr7=r12,r28
    (I16) BF    CL.9,cr7,0x1/lt
BL9:
    (I17) LR    r28=r12
CL.9:
    (I18) AI    r29=r29,2
    (I19) C     cr4=r29,r27
    (I20) BT    CL.0,cr4,0x1/lt
"""

#: the acyclic paths through the loop, keyed by LR-update count
MINMAX_PATHS = {
    0: ["CL.0", "BL2", "CL.6", "CL.9"],
    1: ["CL.0", "BL2", "BL3", "CL.6", "CL.9"],
    2: ["CL.0", "BL2", "BL3", "CL.6", "BL5", "CL.9"],
}


@pytest.fixture
def figure2() -> Function:
    return parse_function(FIGURE2)


@pytest.fixture
def report(capsys):
    """Print a figure table through pytest's capture."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("=" * 72)
            print(title)
            print("-" * 72)
            print(body)
            print("=" * 72)

    return _print
