"""Ablation: scheduling with duplication (Definition 6, future work).

"We say that moving an instruction from B to A requires *duplication* if A
does not dominate B" -- excluded from the paper's prototype ("no
duplication of code is allowed") and announced as future work.  The
``allow_duplication`` knob implements the sound restricted form (join
instructions hoisted into all predecessors); this bench measures its
cycle gains and its cost, the paper's stated worry: "might increase the
code size incurring additional costs in terms of instruction cache
misses" (we report static code size, having no cache model).
"""

import random

from repro import ScheduleLevel, compile_c
from repro.xform import PipelineConfig

#: if/else arms feeding a join with a long-latency reduction step
SOURCE = """
int polishing(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int v = a[i];
        int w = 0;
        if (v < 0) { w = 1 - v; } else { w = v + 3; }
        s = s + w * w;
    }
    return s;
}
"""


def measure(allow: bool, icache=None):
    from repro.sim import SimConfig

    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                            allow_duplication=allow)
    result = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    unit = result["polishing"]
    rng = random.Random(23)
    data = [rng.randrange(-100, 100) for _ in range(200)]
    run = unit.run(data, 200,
                   sim_config=SimConfig(icache=icache))
    expected = sum((1 - v if v < 0 else v + 3) ** 2 for v in data)
    assert run.return_value == expected
    size = unit.func.size()
    dups = sum(1 for m in unit.report.motions if m.duplicated)
    return run.cycles, size, dups, run.timing.icache_misses


def test_duplication_tradeoff(report, benchmark):
    base_cycles, base_size, _, _ = measure(allow=False)
    dup_cycles, dup_size, dups, _ = measure(allow=True)
    rows = [
        f"{'configuration':<16} {'cycles':>8} {'code size':>10} {'dup motions':>12}",
        f"{'paper (no dup)':<16} {base_cycles:>8} {base_size:>10} {0:>12}",
        f"{'duplication':<16} {dup_cycles:>8} {dup_size:>10} {dups:>12}",
        f"speed: {100.0 * (base_cycles - dup_cycles) / base_cycles:+.1f}%"
        f"   size: {100.0 * (dup_size - base_size) / base_size:+.1f}%",
    ]
    report("Ablation: Definition 6 duplication "
           "(the paper's future work: cycles bought with code size)",
           "\n".join(rows))
    assert dup_cycles <= base_cycles
    assert dup_size >= base_size
    benchmark(measure, True)


def test_duplication_icache_cost(report):
    """The paper's stated worry, measured: with a tight instruction cache
    the grown loop can thrash and give its cycle win back."""
    from repro.sim import ICacheConfig

    tiny = ICacheConfig(size=128, line=32, miss_penalty=8)
    base = measure(allow=False, icache=tiny)
    dup = measure(allow=True, icache=tiny)
    rows = [
        f"{'configuration':<16} {'cycles':>8} {'i$ misses':>10}",
        f"{'paper (no dup)':<16} {base[0]:>8} {base[3]:>10}",
        f"{'duplication':<16} {dup[0]:>8} {dup[3]:>10}",
    ]
    report('Ablation: duplication under a 128-byte instruction cache '
           '("additional costs in terms of instruction cache misses")',
           "\n".join(rows))
    assert dup[3] >= base[3]
