"""The reproduction scorecard: every paper claim, checked in one place.

Run ``pytest benchmarks/bench_summary.py`` for a one-screen verdict on
the whole reproduction; the per-figure benches hold the detailed tables.
"""

from repro import ScheduleLevel, rs6k
from repro.bench import figure8_table
from repro.ir import cr, parse_function
from repro.machine import superscalar
from repro.pdg import RegionPDG
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

FIGURE5_BL1 = [1, 2, 18, 3, 19, 4]
FIGURE6_BL1 = [1, 2, 18, 3, 19, 5, 12, 4]


def test_reproduction_scorecard(report, benchmark):
    checks: list[tuple[str, str, str, bool]] = []

    def add(claim, paper, measured, ok):
        checks.append((claim, paper, measured, bool(ok)))

    # Figure 2: baseline cycles
    base = parse_function(FIGURE2)
    base_cycles = [simulate_path_iterations(base, p, rs6k())
                   for p in MINMAX_PATHS.values()]
    add("Fig 2 cycles/iter (0/1/2 updates)", "20/21/22",
        "/".join(map(str, base_cycles)), base_cycles == [20, 21, 22])

    # Figure 4: CSPDG equivalence classes
    pdg = RegionPDG(base, rs6k(), list(base.blocks), "CL.0")
    classes = {frozenset(c) for c in pdg.cspdg.equivalence_classes}
    fig4_ok = ({frozenset({"CL.0", "CL.9"}), frozenset({"BL2", "CL.6"}),
                frozenset({"CL.4", "CL.11"})} <= classes)
    add("Fig 4 equivalence classes", "BL1~BL10, BL2~BL4, BL6~BL8",
        "exact" if fig4_ok else "MISMATCH", fig4_ok)
    add("Fig 4 speculation degrees", "BL8:1, BL5:2",
        f"BL8:{pdg.cspdg.speculation_degree('CL.0', 'CL.11')}, "
        f"BL5:{pdg.cspdg.speculation_degree('CL.0', 'BL5')}",
        pdg.cspdg.speculation_degree("CL.0", "CL.11") == 1
        and pdg.cspdg.speculation_degree("CL.0", "BL5") == 2)

    # Figure 5
    useful = parse_function(FIGURE2)
    global_schedule(useful, rs6k(), ScheduleLevel.USEFUL)
    u_bl1 = [i.uid for i in useful.block("CL.0").instrs]
    u_cycles = max(simulate_path_iterations(useful, p, rs6k())
                   for p in MINMAX_PATHS.values())
    add("Fig 5 BL1 placement", "I1 I2 I18 I3 I19 I4",
        " ".join(f"I{u}" for u in u_bl1), u_bl1 == FIGURE5_BL1)
    add("Fig 5 cycles/iter", "12-13", str(u_cycles), 12 <= u_cycles <= 13)

    # Figure 6
    spec = parse_function(FIGURE2)
    global_schedule(spec, rs6k(), ScheduleLevel.SPECULATIVE)
    s_bl1 = [i.uid for i in spec.block("CL.0").instrs]
    s_cycles = max(simulate_path_iterations(spec, p, rs6k())
                   for p in MINMAX_PATHS.values())
    by_uid = {i.uid: i for i in spec.instructions()}
    renamed = by_uid[12].defs[0] != cr(6)
    add("Fig 6 BL1 placement", "I1 I2 I18 I3 I19 I5 I12 I4",
        " ".join(f"I{u}" for u in s_bl1), s_bl1 == FIGURE6_BL1)
    add("Fig 6 I12 renamed (cr6->cr5)", "renamed",
        "renamed" if renamed else "not renamed", renamed)
    add("Fig 6 cycles/iter", "11-12 (1 better than Fig 5)",
        str(s_cycles), 11 <= s_cycles <= 12 and s_cycles < u_cycles)

    # Figure 8 shape
    rows = {r.paper_name: r for r in figure8_table()}
    add("Fig 8 LI: speculative dominant", "2.0% < 6.9%",
        f"{rows['LI'].rti_useful:.1f}% < {rows['LI'].rti_speculative:.1f}%",
        rows["LI"].rti_speculative > rows["LI"].rti_useful + 5)
    add("Fig 8 EQNTOTT: useful carries it", "7.1% of 7.3%",
        f"{rows['EQNTOTT'].rti_useful:.1f}% of "
        f"{rows['EQNTOTT'].rti_speculative:.1f}%",
        rows["EQNTOTT"].rti_speculative - rows["EQNTOTT"].rti_useful < 5)
    add("Fig 8 ESPRESSO/GCC: flat", "~0%",
        f"{rows['ESPRESSO'].rti_speculative:.1f}% / "
        f"{rows['GCC'].rti_speculative:.1f}%",
        abs(rows["ESPRESSO"].rti_speculative) < 5
        and abs(rows["GCC"].rti_speculative) < 5)

    # Section 7: wider machines
    wide_base = parse_function(FIGURE2)
    wide_sched = parse_function(FIGURE2)
    global_schedule(wide_sched, superscalar(2), ScheduleLevel.SPECULATIVE)
    path = MINMAX_PATHS[0]
    rti_narrow = 1 - s_cycles / 21
    b = simulate_path_iterations(wide_base, path, superscalar(2))
    s = simulate_path_iterations(wide_sched, path, superscalar(2))
    add("S7 wider machine, bigger payoff", "expected",
        f"ss2: {100 * (b - s) / b:.0f}% vs rs6k: {100 * rti_narrow:.0f}%",
        (b - s) / b >= rti_narrow - 0.02)

    width = max(len(c[0]) for c in checks)
    lines = [f"{'claim':<{width}}  {'paper':<28} {'measured':<28} verdict"]
    for claim, paper, measured, ok in checks:
        lines.append(f"{claim:<{width}}  {paper:<28} {measured:<28} "
                     f"{'PASS' if ok else 'FAIL'}")
    passed = sum(1 for c in checks if c[3])
    lines.append(f"{passed}/{len(checks)} claims reproduced")
    report("REPRODUCTION SCORECARD — Bernstein & Rodeh, PLDI 1991",
           "\n".join(lines))
    assert all(c[3] for c in checks), [c[0] for c in checks if not c[3]]
    benchmark(simulate_path_iterations, spec, MINMAX_PATHS[0], rs6k())
