"""Ablation: the Section 6 pipeline steps (unrolling and rotation).

Measures the contribution of step 1 (unroll small inner loops) and step 3
(rotate them, enabling the partial software pipelining of the second
scheduling pass) on a tight reduction loop.
"""

from repro import ScheduleLevel, compile_c
from repro.xform import PipelineConfig

SUM_SOURCE = """
int dotsum(int a[], int b[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s = s + a[i] * b[i];
    }
    return s;
}
"""

CONFIGS = {
    "neither": dict(unroll_max_blocks=0, rotate_max_blocks=0),
    "unroll": dict(unroll_max_blocks=4, rotate_max_blocks=0),
    "rotate": dict(unroll_max_blocks=0, rotate_max_blocks=4),
    "both (paper)": dict(unroll_max_blocks=4, rotate_max_blocks=4),
}


def run_config(name_kwargs):
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, **name_kwargs)
    result = compile_c(SUM_SOURCE, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    a = list(range(64))
    b = [3 * x + 1 for x in range(64)]
    run = result["dotsum"].run(a, b, 64)
    assert run.return_value == sum(x * y for x, y in zip(a, b))
    return run.cycles


def test_unroll_rotate_contribution(report, benchmark):
    cycles = {name: run_config(kwargs) for name, kwargs in CONFIGS.items()}
    rows = [f"{'configuration':<14} {'cycles':>8} {'vs neither':>11}"]
    for name, value in cycles.items():
        delta = 100.0 * (cycles["neither"] - value) / cycles["neither"]
        rows.append(f"{name:<14} {value:>8} {delta:>10.1f}%")
    report("Ablation: unroll/rotate contribution on a reduction loop "
           "(speculative level)", "\n".join(rows))
    # the full paper pipeline must not lose to doing nothing
    assert cycles["both (paper)"] <= cycles["neither"]
    benchmark(run_config, CONFIGS["both (paper)"])
