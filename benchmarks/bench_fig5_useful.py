"""Figure 5: useful-only global scheduling of the minmax loop.

Paper claims: I18/I19 move into BL1, I8 into BL2, I15 into BL6; the loop
drops from 20-22 to 12-13 cycles per iteration.
"""

from repro import ScheduleLevel, rs6k
from repro.ir import format_function, parse_function
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

FIGURE5_BL1 = [1, 2, 18, 3, 19, 4]


def test_fig5_schedule(report, benchmark):
    def schedule():
        func = parse_function(FIGURE2)
        global_schedule(func, rs6k(), ScheduleLevel.USEFUL)
        return func

    func = benchmark(schedule)
    assert [i.uid for i in func.block("CL.0").instrs] == FIGURE5_BL1
    report("Figure 5: useful-only schedule (exact instruction placement)",
           format_function(func))


def test_fig5_cycles(report):
    func = parse_function(FIGURE2)
    global_schedule(func, rs6k(), ScheduleLevel.USEFUL)
    rows = ["path (updates)  paper   measured"]
    for updates, path in MINMAX_PATHS.items():
        measured = simulate_path_iterations(func, path, rs6k())
        assert 12 <= measured <= 13
        rows.append(f"{updates:>14}  12-13  {measured:>9}")
    report("Figure 5: cycles per iteration (paper: 12-13)", "\n".join(rows))
