"""Comparison: trace-limited vs full global scheduling (the Section 1
positioning against trace scheduling [F81]).

"While trace scheduling assumes the existence of a main trace in the
program (which is likely in scientific computations, but may not be true
in symbolic or Unix-type programs), global scheduling ... does not depend
on such assumption."

We emulate the trace-scheduling *scope* inside the same framework: code
motion is restricted to blocks on the profile-selected main trace.  On
the LI-like kernel (symbolic code: flat dispatch, no dominant path) the
trace misses most opportunities; on the EQNTOTT-like kernel (a dominant
straight-line path) both do about equally well -- exactly the paper's
argument.
"""

import random

from repro import ScheduleLevel, compile_c, rs6k
from repro.bench import WORKLOADS
from repro.compiler import CompiledUnit
from repro.lang import compile_c_functions
from repro.sched import (
    BranchProfile,
    find_regions,
    global_schedule,
    schedule_function_blocks,
    select_main_trace,
)
from repro.xform import PipelineReport


def _train(workload, args):
    result = compile_c(workload.source, level=ScheduleLevel.NONE)
    run = result[workload.entry].run(
        *[list(a) if isinstance(a, list) else a for a in args],
        call_handlers=workload.call_handlers)
    profile = BranchProfile()
    profile.record(run.execution)
    return profile


def _cycles(workload, args, *, trace_blocks):
    units = compile_c_functions(workload.source)
    cf = units[workload.entry]
    block_filter = None
    if trace_blocks is not None:
        block_filter = lambda label: label in trace_blocks
    global_schedule(cf.func, rs6k(), ScheduleLevel.SPECULATIVE,
                    live_at_exit=cf.live_at_exit,
                    block_filter=block_filter)
    schedule_function_blocks(cf.func, rs6k())
    unit = CompiledUnit(cf, rs6k(),
                        PipelineReport(ScheduleLevel.SPECULATIVE))
    run = unit.run(*[list(a) if isinstance(a, list) else a for a in args],
                   call_handlers=workload.call_handlers)
    expected = workload.reference(
        *[list(a) if isinstance(a, list) else a for a in args])
    assert run.return_value == expected
    return run.cycles


def _trace_of(workload, args, profile):
    units = compile_c_functions(workload.source)
    cf = units[workload.entry]
    regions = [r for r in find_regions(cf.func) if r.kind == "loop"]
    blocks: set[str] = set()
    for region in regions:
        blocks.update(select_main_trace(
            profile, cf.func, region.header_node,
            set(region.member_labels)))
    return blocks


def test_trace_vs_global(report, benchmark):
    rows = [f"{'workload':<14} {'trace-limited':>14} {'global':>8} "
            f"{'global wins by':>15}"]
    advantages = {}
    for workload in WORKLOADS[:2]:  # LI-like (symbolic), EQNTOTT-like
        args = workload.make_args(random.Random(31))
        profile = _train(workload, args)
        trace_blocks = _trace_of(workload, args, profile)
        trace_cycles = _cycles(workload, args, trace_blocks=trace_blocks)
        global_cycles = _cycles(workload, args, trace_blocks=None)
        advantage = 100.0 * (trace_cycles - global_cycles) / trace_cycles
        advantages[workload.name] = advantage
        rows.append(f"{workload.name:<14} {trace_cycles:>14} "
                    f"{global_cycles:>8} {advantage:>14.1f}%")
    report("Comparison: trace-scheduling scope vs global scheduling "
           "(Section 1's [F81] argument)", "\n".join(rows))
    # global must never lose, and the symbolic (LI-like) workload must
    # show the bigger win -- flat dispatch has no main trace to ride
    assert advantages["li_like"] >= advantages["eqntott_like"] - 1e-9
    assert all(a >= 0 for a in advantages.values())
    benchmark(_cycles, WORKLOADS[1],
              WORKLOADS[1].make_args(random.Random(31)), trace_blocks=None)
