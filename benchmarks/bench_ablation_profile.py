"""Ablation: profile-guided speculation (Section 1's probability hook).

The paper's prototype speculates blindly (original-order tie-breaks); it
notes that global scheduling "is capable of taking advantage of the branch
probabilities, whenever available (e.g. computed by profiling)".  This
bench runs a skewed dispatch loop -- one opcode dominates -- and compares
blind speculation against profile-guided speculation trained on a
representative input.
"""

import random

from repro import ScheduleLevel, compile_c
from repro.sched import BranchProfile
from repro.xform import PipelineConfig

#: dispatch loop where the *last* tested opcode dominates the input mix --
#: the worst case for original-order speculation, which hoists the first
#: dispatch compares into the scarce delay slots
SOURCE = """
int dispatch(int code[], int n) {
    int pc = 0;
    int acc = 0;
    while (pc < n) {
        int op = code[pc];
        if (op == 0) { int t0 = op * 5;  acc = acc + (t0 ^ 1); }
        else { if (op == 1) { int t1 = op * 7;  acc = acc - (t1 ^ 2); }
        else { if (op == 2) { int t2 = op * 11; acc = acc ^ (t2 + 3); }
        else { int t3 = op * 13; acc = acc + (t3 ^ 4); } } }
        pc = pc + 1;
    }
    return acc;
}
"""


def skewed_code(rng: random.Random, n: int = 400) -> list[int]:
    # 85% opcode 3 (the final else), the rest uniform
    return [3 if rng.random() < 0.85 else rng.randrange(3)
            for _ in range(n)]


def run_with(profile: BranchProfile | None, code: list[int]):
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, profile=profile)
    result = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    return result["dispatch"].run(list(code), len(code))


def train_profile(code: list[int]) -> BranchProfile:
    # compile without scheduling, run once, collect block counts
    result = compile_c(SOURCE, level=ScheduleLevel.NONE)
    run = result["dispatch"].run(list(code), len(code))
    profile = BranchProfile()
    profile.record(run.execution)
    return profile


def test_profile_guided_speculation(report, benchmark):
    rng = random.Random(17)
    training = skewed_code(rng)
    evaluation = skewed_code(rng)

    profile = train_profile(training)
    blind = run_with(None, evaluation)
    guided = run_with(profile, evaluation)
    assert blind.return_value == guided.return_value

    delta = 100.0 * (blind.cycles - guided.cycles) / blind.cycles
    rows = [
        f"{'configuration':<18} {'cycles':>8}",
        f"{'blind (paper)':<18} {blind.cycles:>8}",
        f"{'profile-guided':<18} {guided.cycles:>8}",
        f"improvement: {delta:.1f}% on an 85%-skewed opcode mix",
    ]
    report("Ablation: profile-guided vs blind speculation "
           "(Section 1's branch-probability hook)", "\n".join(rows))
    assert guided.cycles <= blind.cycles
    benchmark(run_with, profile, evaluation)
