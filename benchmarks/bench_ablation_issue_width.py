"""Ablation: issue width (the Section 6/7 claim).

"We may expect even bigger payoffs in machines with a larger number of
computational units."  Sweeps the parametric machine family over the
minmax loop and kernels, measuring the speculative-level improvement.
"""

import random

from repro import ScheduleLevel, compile_c
from repro.bench import WORKLOADS
from repro.machine import ideal_no_delays, rs6k, scalar_pipelined, superscalar, vliw_like
from repro.ir import parse_function
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

MACHINES = [
    ("scalar", scalar_pipelined),
    ("rs6k", rs6k),
    ("ss2", lambda: superscalar(2)),
    ("ss4", lambda: superscalar(4)),
    ("vliw8", vliw_like),
]


def improvement_on_minmax(machine) -> float:
    base = parse_function(FIGURE2)
    sched = parse_function(FIGURE2)
    global_schedule(sched, machine, ScheduleLevel.SPECULATIVE)
    total_base = total_sched = 0
    for path in MINMAX_PATHS.values():
        total_base += simulate_path_iterations(base, path, machine)
        total_sched += simulate_path_iterations(sched, path, machine)
    return 100.0 * (total_base - total_sched) / total_base


def test_issue_width_sweep_minmax(report, benchmark):
    rows = [f"{'machine':<8} {'width':>5}  {'RTI(minmax)':>11}"]
    gains = {}
    for name, factory in MACHINES:
        machine = factory()
        rti = improvement_on_minmax(machine)
        gains[name] = rti
        rows.append(f"{name:<8} {machine.total_issue_width:>5} "
                    f"{rti:>10.1f}%")
    report("Ablation: global scheduling payoff vs machine width "
           "(paper: wider => bigger payoff)", "\n".join(rows))
    # the 20-instruction loop saturates mid-width machines; the paper's
    # claim shows up at the extremes (and robustly on the kernels below)
    assert gains["vliw8"] >= gains["rs6k"]
    benchmark(improvement_on_minmax, rs6k())


def test_issue_width_sweep_kernels(report):
    rows = [f"{'workload':<14}" + "".join(f"{n:>9}" for n, _ in MACHINES)]
    for workload in WORKLOADS[:2]:
        args = workload.make_args(random.Random(11))
        cells = []
        for name, factory in MACHINES:
            machine = factory()
            cycles = {}
            for level in (ScheduleLevel.NONE, ScheduleLevel.SPECULATIVE):
                result = compile_c(workload.source, machine=machine,
                                   level=level)
                call_args = tuple(list(a) if isinstance(a, list) else a
                                  for a in args)
                run = result[workload.entry].run(
                    *call_args, call_handlers=workload.call_handlers)
                cycles[level] = run.cycles
            rti = 100.0 * (cycles[ScheduleLevel.NONE]
                           - cycles[ScheduleLevel.SPECULATIVE]) \
                / cycles[ScheduleLevel.NONE]
            cells.append(f"{rti:>8.1f}%")
        rows.append(f"{workload.name:<14}" + "".join(cells))
    report("Ablation: speculative-level RTI per machine width (kernels)",
           "\n".join(rows))
