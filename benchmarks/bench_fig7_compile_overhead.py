"""Figure 7: compile-time overhead of global scheduling.

Paper (on a 40ns RS/6K model 530, real SPEC sources):

    PROGRAM    BASE(s)  CTO
    LI             206  13%
    EQNTOTT         78  17%
    ESPRESSO       465  12%
    GCC           2457  13%

We measure the same quantity -- wall-clock compile time with the full
Section 6 pipeline vs the BASE compiler -- on the SPEC-like kernels.
Absolute seconds are incomparable (different decade, different sources);
the reproduction target is a consistent positive overhead in the tens of
percent, dominated by PDG construction and the extra scheduling passes.
"""

from repro import ScheduleLevel, compile_c
from repro.bench import WORKLOADS, figure7_table, format_figure7

PAPER_CTO = {"LI": 13, "EQNTOTT": 17, "ESPRESSO": 12, "GCC": 13}


def test_fig7_table(report):
    rows = figure7_table(repeats=5)
    lines = [f"{'PROGRAM':<10} {'paper CTO':>9}  {'measured CTO':>12}"]
    for row in rows:
        lines.append(f"{row.paper_name:<10} {PAPER_CTO[row.paper_name]:>8}%"
                     f"  {row.cto:>11.0f}%")
        assert row.cto > 0, "global scheduling must cost compile time"
    report("Figure 7: compile-time overhead (BASE -> +global scheduling)",
           "\n".join(lines))


def test_fig7_base_compile_speed(benchmark):
    workload = WORKLOADS[0]
    benchmark(compile_c, workload.source, level=ScheduleLevel.NONE)


def test_fig7_scheduled_compile_speed(benchmark):
    workload = WORKLOADS[0]
    benchmark(compile_c, workload.source, level=ScheduleLevel.SPECULATIVE)
