"""Ablation: the "small regions" compile-time guard (Section 6).

'Only "small" reducible regions are scheduled.  "Small" regions are those
that have at most 64 basic blocks and 256 instructions.'  The limit trades
run-time gains for compile time; this bench measures both sides on a
program whose hot loop exceeds the limit.
"""

import time

from repro import ScheduleLevel, compile_c
from repro.xform import PipelineConfig


def big_dispatch_source(cases: int) -> str:
    """An interpreter-style loop with ``cases`` dispatch arms: each arm is
    ~3 blocks, so ~30 cases blow through the 64-block region limit."""
    arms = []
    for k in range(cases):
        arms.append(
            ("if (op == %d) { acc = acc + %d; } else { " % (k, k + 1)))
    body = "".join(arms) + "acc = acc ^ op; " + ("}" * cases)
    return """
int dispatch(int code[], int n) {
    int pc = 0;
    int acc = 0;
    while (pc < n) {
        int op = code[pc];
        %s
        pc = pc + 1;
    }
    return acc;
}
""" % body


def measure(source, apply_limits: bool):
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                            apply_size_limits=apply_limits)
    start = time.perf_counter()
    result = compile_c(source, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    elapsed = time.perf_counter() - start
    code = [i % 40 for i in range(200)]
    run = result["dispatch"].run(code, 200)
    return elapsed, run.cycles, run.return_value


def test_region_limits(report, benchmark):
    source = big_dispatch_source(30)
    t_on, cycles_on, v_on = measure(source, apply_limits=True)
    t_off, cycles_off, v_off = measure(source, apply_limits=False)
    assert v_on == v_off  # semantics identical either way
    rows = [
        f"{'limits':<8} {'compile(s)':>11} {'run cycles':>11}",
        f"{'on':<8} {t_on:>11.4f} {cycles_on:>11}",
        f"{'off':<8} {t_off:>11.4f} {cycles_off:>11}",
    ]
    report('Ablation: the 64-block/256-instruction "small region" limit '
           "on a 30-case dispatch loop", "\n".join(rows))
    # without limits the big region gets scheduled: never slower code
    assert cycles_off <= cycles_on
    benchmark(measure, source, True)
