"""Ablation: scheduling before vs after register allocation.

Section 2: "we prefer to invoke the global scheduling algorithm before
the register allocation is done (at this stage there is an unbounded
number of registers in the code), even though conceptually there is no
problem to activate the instruction scheduling after the register
allocation is completed" (the trade-off is studied in [BEH89]).

This bench runs both phase orders over the Figure 2 loop under shrinking
register budgets: allocation first re-uses registers aggressively, adding
anti/output dependences that shackle the scheduler.
"""

from repro import ScheduleLevel, rs6k
from repro.ir import RegClass, gpr, parse_function
from repro.regalloc import allocate_registers
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

LIVE = frozenset({gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)})


def schedule_then_allocate():
    func = parse_function(FIGURE2)
    report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                             live_at_exit=LIVE)
    allocate_registers(func, live_at_exit=LIVE)
    return func, len(report.motions)


def allocate_then_schedule(cr_budget: int):
    func = parse_function(FIGURE2)
    alloc = allocate_registers(func, live_at_exit=LIVE,
                               k={RegClass.CR: cr_budget})
    live = frozenset(alloc.mapping[r] for r in LIVE)
    report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                             live_at_exit=live)
    return func, len(report.motions)


def cycles_of(func):
    return sum(simulate_path_iterations(func, p, rs6k())
               for p in MINMAX_PATHS.values())


def test_phase_order(report, benchmark):
    sched_first, motions_first = schedule_then_allocate()
    c_first = cycles_of(sched_first)

    rows = [f"{'order':<28} {'motions':>8} {'cycles(3 paths)':>16}",
            f"{'schedule -> allocate (paper)':<28} {motions_first:>8} "
            f"{c_first:>16}"]
    for budget in (8, 3, 2):
        alloc_first, motions_after = allocate_then_schedule(budget)
        c_after = cycles_of(alloc_first)
        rows.append(
            f"{f'allocate (K_cr={budget}) -> schedule':<28} "
            f"{motions_after:>8} {c_after:>16}")
        assert motions_after <= motions_first
        assert c_after >= c_first
    report("Ablation: phase order (Section 2 / [BEH89]) -- register reuse "
           "adds false dependences that shackle global motion",
           "\n".join(rows))
    benchmark(schedule_then_allocate)
