"""Ablation: the Section 5.2 priority ordering.

The paper: "the current ordering of the heuristic functions is tuned
towards a machine with a small number of resources. This is the reason for
always preferring to schedule a useful instruction before a speculative
one ... experimentation and tuning are needed for better results."

We compare four decision orders over the minmax loop and the SPEC-like
kernels:

* ``paper``      -- class, D, CP, original order (the shipped order);
* ``no-class``   -- D, CP, order (speculative may beat useful);
* ``cp-first``   -- class, CP, D, order;
* ``order-only`` -- original order only (no heuristics at all).
"""

import random

from repro import ScheduleLevel, rs6k
from repro.bench import WORKLOADS
from repro.compiler import compile_c
from repro.ir import parse_function
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations
from repro.xform import PipelineConfig

from conftest import FIGURE2, MINMAX_PATHS


def paper_key(ins, *, useful, priorities):
    d, cp = priorities.get(id(ins), (0, 1))
    return (0 if useful else 1, -d, -cp, ins.uid)


def no_class_key(ins, *, useful, priorities):
    d, cp = priorities.get(id(ins), (0, 1))
    return (-d, -cp, ins.uid)


def cp_first_key(ins, *, useful, priorities):
    d, cp = priorities.get(id(ins), (0, 1))
    return (0 if useful else 1, -cp, -d, ins.uid)


def order_only_key(ins, *, useful, priorities):
    return (ins.uid,)


ORDERS = {
    "paper": paper_key,
    "no-class": no_class_key,
    "cp-first": cp_first_key,
    "order-only": order_only_key,
}


def minmax_cycles(priority_fn):
    func = parse_function(FIGURE2)
    global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                    priority_fn=priority_fn)
    return {u: simulate_path_iterations(func, p, rs6k())
            for u, p in MINMAX_PATHS.items()}


def test_heuristic_ordering_on_minmax(report, benchmark):
    rows = [f"{'order':<12} cycles/iter (0/1/2 updates)"]
    results = {}
    for name, fn in ORDERS.items():
        cycles = minmax_cycles(fn)
        results[name] = cycles
        rows.append(f"{name:<12} {cycles[0]}/{cycles[1]}/{cycles[2]}")
    report("Ablation: Section 5.2 priority orderings on the minmax loop",
           "\n".join(rows))
    # the paper's order is never worse than ignoring the heuristics
    for updates in MINMAX_PATHS:
        assert results["paper"][updates] <= results["order-only"][updates]
    benchmark(minmax_cycles, paper_key)


def test_heuristic_ordering_on_kernels(report):
    rng_args = {}
    rows = [f"{'workload':<14}" + "".join(f"{n:>12}" for n in ORDERS)]
    totals = {name: 0 for name in ORDERS}
    for workload in WORKLOADS[:2]:  # the two winners: LI, EQNTOTT
        args = workload.make_args(random.Random(7))
        cells = []
        for name, fn in ORDERS.items():
            result = compile_c(workload.source,
                               level=ScheduleLevel.SPECULATIVE,
                               config=PipelineConfig(
                                   level=ScheduleLevel.SPECULATIVE))
            # re-schedule with the ablated order
            from repro.lang import compile_c_functions
            units = compile_c_functions(workload.source)
            cf = units[workload.entry]
            global_schedule(cf.func, rs6k(), ScheduleLevel.SPECULATIVE,
                            live_at_exit=cf.live_at_exit, priority_fn=fn)
            from repro.sched import schedule_function_blocks
            schedule_function_blocks(cf.func, rs6k())
            from repro.compiler import CompiledUnit
            from repro.xform import PipelineReport
            unit = CompiledUnit(cf, rs6k(),
                                PipelineReport(ScheduleLevel.SPECULATIVE))
            call_args = tuple(list(a) if isinstance(a, list) else a
                              for a in args)
            run = unit.run(*call_args, call_handlers=workload.call_handlers)
            cells.append(run.cycles)
            totals[name] += run.cycles
        rows.append(f"{workload.name:<14}" + "".join(f"{c:>12}"
                                                     for c in cells))
    rows.append(f"{'TOTAL':<14}" + "".join(f"{totals[n]:>12}"
                                           for n in ORDERS))
    report("Ablation: priority orderings on the LI/EQNTOTT kernels "
           "(simulated cycles, lower is better)", "\n".join(rows))
