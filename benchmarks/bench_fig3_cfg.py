"""Figure 3: the control flow graph of the minmax loop.

Regenerates the edge list of the 10-block loop (plus ENTRY/EXIT) and
benchmarks CFG + dominator construction.
"""

from repro.cfg import ControlFlowGraph, ENTRY, EXIT, dominator_tree, postdominator_tree


#: Figure 3's edges, in paper block numbering (BL1..BL10)
PAPER_EDGES = {
    ("BL1", "BL2"), ("BL1", "BL6"),
    ("BL2", "BL3"), ("BL2", "BL4"),
    ("BL3", "BL4"),
    ("BL4", "BL5"), ("BL4", "BL10"),
    ("BL5", "BL10"),
    ("BL6", "BL7"), ("BL6", "BL8"),
    ("BL7", "BL8"),
    ("BL8", "BL9"), ("BL8", "BL10"),
    ("BL9", "BL10"),
    ("BL10", "BL1"),
}

LABEL_TO_PAPER = {
    "CL.0": "BL1", "BL2": "BL2", "BL3": "BL3", "CL.6": "BL4", "BL5": "BL5",
    "CL.4": "BL6", "BL7": "BL7", "CL.11": "BL8", "BL9": "BL9", "CL.9": "BL10",
}


def test_fig3_edge_list(figure2, report, benchmark):
    cfg = benchmark(ControlFlowGraph, figure2)
    edges = {
        (LABEL_TO_PAPER[src], LABEL_TO_PAPER[dst])
        for src, dst in cfg.graph.edges()
        if src in LABEL_TO_PAPER and dst in LABEL_TO_PAPER
    }
    assert edges == PAPER_EDGES
    lines = [f"{a} -> {b}" for a, b in sorted(edges)]
    lines.append(f"ENTRY -> BL1; BL10 -> EXIT (as in the paper)")
    report("Figure 3: control flow graph of the loop (15 edges, exact)",
           "\n".join(lines))


def test_fig3_dominators(figure2, report, benchmark):
    cfg = ControlFlowGraph(figure2)

    def build():
        dom = dominator_tree(cfg.graph, ENTRY)
        pdom = postdominator_tree(cfg.graph, EXIT)
        return dom, pdom

    dom, pdom = benchmark(build)
    rows = ["block  idom   ipdom"]
    for label, paper in LABEL_TO_PAPER.items():
        rows.append(f"{paper:>5}  {LABEL_TO_PAPER.get(dom.idom(label), dom.idom(label)):>5}"
                    f"  {LABEL_TO_PAPER.get(pdom.idom(label), pdom.idom(label)):>6}")
    report("Figure 3 (analysis): dominator / postdominator parents",
           "\n".join(rows))
