"""Figure 6: useful + 1-branch speculative scheduling of the minmax loop.

Paper claims: additionally I5 and I12 move speculatively into BL1 (I12's
condition register renamed, the paper's cr5), filling the three-cycle
compare->branch delay; 11-12 cycles per iteration.
"""

from repro import ScheduleLevel, rs6k
from repro.ir import cr, format_function, parse_function
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from conftest import FIGURE2, MINMAX_PATHS

FIGURE6_BL1 = [1, 2, 18, 3, 19, 5, 12, 4]


def test_fig6_schedule(report, benchmark):
    def schedule():
        func = parse_function(FIGURE2)
        global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE)
        return func

    func = benchmark(schedule)
    assert [i.uid for i in func.block("CL.0").instrs] == FIGURE6_BL1
    by_uid = {i.uid: i for i in func.instructions()}
    assert by_uid[12].defs[0] != cr(6)  # the cr5-style rename happened
    report("Figure 6: useful + speculative schedule "
           "(exact instruction placement, I12 renamed)",
           format_function(func))


def test_fig6_cycles(report):
    func = parse_function(FIGURE2)
    global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE)
    rows = ["path (updates)  paper   measured"]
    for updates, path in MINMAX_PATHS.items():
        measured = simulate_path_iterations(func, path, rs6k())
        assert 11 <= measured <= 12
        rows.append(f"{updates:>14}  11-12  {measured:>9}")
    report("Figure 6: cycles per iteration (paper: 11-12, "
           "one cycle better than Figure 5)", "\n".join(rows))
