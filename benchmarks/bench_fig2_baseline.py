"""Figure 2: the BASE compiler's minmax loop and its 20-22 cycles/iteration.

Paper claim: "we estimate that the code executes in 20, 21 or 22 cycles,
depending on if 0, 1 or 2 updates of max and min variables (LR
instructions) are done, respectively."
"""

from repro import ScheduleLevel, compile_c, rs6k
from repro.bench import MINMAX_C
from repro.sim import simulate_path_iterations

from conftest import MINMAX_PATHS


def test_fig2_cycle_table(figure2, report, benchmark):
    rows = ["updates  paper  measured"]
    for updates, path in MINMAX_PATHS.items():
        measured = simulate_path_iterations(figure2, path, rs6k())
        rows.append(f"{updates:>7}  {20 + updates:>5}  {measured:>8}")
        assert measured == 20 + updates
    report("Figure 2: minmax loop, BASE schedule (cycles per iteration)",
           "\n".join(rows))
    benchmark(simulate_path_iterations, figure2, MINMAX_PATHS[2], rs6k(),
              iterations=8)


def test_fig2_base_compilation(report, benchmark):
    """Benchmark the BASE compiler over the Figure 1 source."""
    result = benchmark(compile_c, MINMAX_C, level=ScheduleLevel.NONE)
    func = result["minmax"].func
    report("Figure 2: BASE compilation of the Figure 1 program",
           f"{len(func.blocks)} blocks, {func.size()} instructions "
           f"(paper's loop: 10 blocks, 20 instructions)")
