"""Figure 8: run-time improvement of useful / speculative scheduling.

Paper (seconds on the RS/6K, RTI in percent):

    PROGRAM    BASE   USEFUL  SPECULATIVE
    LI          312     2.0%     6.9%
    EQNTOTT      45     7.1%     7.3%
    ESPRESSO    106    -0.5%     0%
    GCC          76    -1.5%     0%

Reproduction target (shape, not magnitude -- our kernels are pure hot
loops, so percentages run higher):

* LI-like: speculative scheduling dominant;
* EQNTOTT-like: useful scheduling gets nearly all of it, speculative a
  sliver more;
* ESPRESSO-like and GCC-like: no meaningful improvement.
"""

import random

import pytest

from repro.bench import WORKLOADS, figure8_table, format_figure8, measure_rti

PAPER_RTI = {
    "LI": (2.0, 6.9),
    "EQNTOTT": (7.1, 7.3),
    "ESPRESSO": (-0.5, 0.0),
    "GCC": (-1.5, 0.0),
}


@pytest.fixture(scope="module")
def rows():
    return figure8_table()


def test_fig8_table(rows, report):
    lines = [f"{'PROGRAM':<10} {'paper U/S':>14}  {'measured U/S':>16}"]
    for row in rows:
        pu, ps = PAPER_RTI[row.paper_name]
        lines.append(
            f"{row.paper_name:<10} {pu:>6.1f}%/{ps:>5.1f}%  "
            f"{row.rti_useful:>7.1f}%/{row.rti_speculative:>6.1f}%"
        )
    report("Figure 8: run-time improvement over BASE (shape reproduction)",
           "\n".join(lines))


def test_fig8_li_speculative_dominant(rows):
    li = next(r for r in rows if r.paper_name == "LI")
    assert li.rti_speculative > li.rti_useful + 5


def test_fig8_eqntott_useful_dominant(rows):
    eq = next(r for r in rows if r.paper_name == "EQNTOTT")
    assert eq.rti_useful > 10
    assert 0 <= eq.rti_speculative - eq.rti_useful < 5


def test_fig8_espresso_and_gcc_flat(rows):
    for name in ("ESPRESSO", "GCC"):
        row = next(r for r in rows if r.paper_name == name)
        assert abs(row.rti_useful) < 5
        assert abs(row.rti_speculative) < 8


def test_fig8_measurement_speed(benchmark):
    benchmark(measure_rti, WORKLOADS[1])
