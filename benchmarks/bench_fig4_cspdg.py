"""Figure 4: the control subgraph of the PDG, with equivalence edges.

Regenerates the solid (control dependence) and dashed (equivalence) edges
of Figure 4 and benchmarks PDG construction.
"""

from repro.machine import rs6k
from repro.pdg import RegionPDG

from bench_fig3_cfg import LABEL_TO_PAPER


def paper(name):
    return LABEL_TO_PAPER.get(name, name)


def test_fig4_cspdg(figure2, report, benchmark):
    pdg = benchmark(RegionPDG, figure2, rs6k(), list(figure2.blocks), "CL.0")

    # solid edges
    solid = sorted({(paper(a), paper(b)) for a, b, _c in pdg.cspdg.edges()})
    expected_solid = sorted({
        ("BL1", "BL2"), ("BL1", "BL4"), ("BL1", "BL6"), ("BL1", "BL8"),
        ("BL2", "BL3"), ("BL4", "BL5"), ("BL6", "BL7"), ("BL8", "BL9"),
    })
    assert solid == expected_solid

    # dashed (equivalence) edges, directed by dominance
    dashed = sorted(
        (paper(a), paper(b))
        for cls in pdg.cspdg.equivalence_classes
        for a, b in zip(cls, cls[1:])
    )
    assert dashed == [("BL1", "BL10"), ("BL2", "BL4"), ("BL6", "BL8")]

    lines = ["solid (control dependence):"]
    lines += [f"  {a} -> {b}" for a, b in solid]
    lines.append("dashed (equivalent, dominance-directed):")
    lines += [f"  {a} ~~> {b}" for a, b in dashed]
    report("Figure 4: CSPDG of the loop (exact match)", "\n".join(lines))


def test_fig4_speculation_degrees(figure2, report, benchmark):
    pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")

    def degrees():
        return {
            (paper(a), paper(b)): pdg.cspdg.speculation_degree(a, b)
            for a in ("CL.0", "BL2")
            for b in ("CL.9", "CL.11", "BL5", "BL3")
        }

    table = benchmark(degrees)
    # the paper's two worked examples
    assert table[("BL1", "BL8")] == 1
    assert table[("BL1", "BL5")] == 2
    rows = [f"{a} -> {b}: {n}-branch speculative"
            for (a, b), n in sorted(table.items()) if n is not None]
    report("Definition 7: speculation degrees from the CSPDG",
           "\n".join(rows))
