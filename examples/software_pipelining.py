#!/usr/bin/env python3
"""The Section 6 software-pipelining story, made visible.

"[S]uch regions that represent loops with up to 4 basic blocks are
rotated, by copying their first basic block after the end of the loop.
By applying the global scheduling the second time to the rotated inner
loops, we achieve the partial effect of the software pipelining, i.e.,
some of the instructions of the next iteration of the loop are executed
within the body of the previous iteration."

This example compiles a dot-product loop four ways -- no unroll/rotate,
unroll only, rotate only, and the full paper pipeline -- prints the loop
bodies and per-cycle issue timelines, and shows the next-iteration load
sliding into the previous iteration's delay slots.

Run:  python examples/software_pipelining.py
"""

from repro import ScheduleLevel, compile_c, rs6k
from repro.sim import TraceSimulator, format_timeline, stall_cycles
from repro.xform import PipelineConfig

SOURCE = """
int dot(int a[], int b[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s = s + a[i] * b[i];
    }
    return s;
}
"""

VARIANTS = {
    "no unroll/rotate": dict(unroll_max_blocks=0, rotate_max_blocks=0),
    "unroll only": dict(unroll_max_blocks=4, rotate_max_blocks=0),
    "rotate only": dict(unroll_max_blocks=0, rotate_max_blocks=4),
    "paper pipeline": dict(unroll_max_blocks=4, rotate_max_blocks=4),
}


def main() -> None:
    a = list(range(1, 65))
    b = [3 * x ^ 5 for x in a]
    expected = sum(x * y for x, y in zip(a, b))

    summary = []
    for name, knobs in VARIANTS.items():
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, **knobs)
        result = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE,
                           config=config)
        unit = result["dot"]
        run = unit.run(list(a), list(b), len(a))
        assert run.return_value == expected
        summary.append((name, run.cycles, run.timing.ipc))

        if name == "paper pipeline":
            print("=" * 70)
            print(f"{name}: the scheduled function")
            print("=" * 70)
            print(unit.assembly())
            # timeline of one steady-state iteration trace
            print("Issue timeline of the first ~40 executed instructions")
            print("(X = issue cycle, = = result latency draining):")
            instrs = run.execution.instr_trace[:40]
            sim = TraceSimulator(rs6k())
            from repro.sim import SimulationResult
            cycles = [sim.issue(i) for i in instrs]
            result_obj = SimulationResult(
                cycles=max(cycles) + 1, instructions=len(instrs),
                issue_cycles=cycles)
            print(format_timeline(instrs, result_obj, rs6k(),
                                  max_cycles=60))

    print("=" * 70)
    print(f"{'variant':<20} {'cycles':>8} {'IPC':>6}")
    for name, cycles, ipc in summary:
        print(f"{name:<20} {cycles:>8} {ipc:>6.2f}")
    base = summary[0][1]
    best = summary[-1][1]
    print(f"\nunroll+rotate+reschedule: "
          f"{100.0 * (base - best) / base:.1f}% fewer cycles than "
          f"global scheduling alone")


if __name__ == "__main__":
    main()
