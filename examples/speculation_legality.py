#!/usr/bin/env python3
"""The Section 5.3 legality story: why speculation needs live-on-exit info.

Builds the paper's exact example --

    if (cond) x = 5;
    else      x = 3;
    print(x);

-- in the textual IR, runs the speculative scheduler, and shows that:

1. data dependences alone would allow BOTH definitions of ``x`` into B1;
2. the live-on-exit rule lets the first one (``x=5``) move;
3. the dynamic update then blocks the second (``x=3``);
4. the program still prints the right value on both paths.

It then shows the Figure 6 contrast: when the clashing definition's value
is consumed locally (a compare feeding its own branch), on-demand renaming
(the paper's ``cr6 -> cr5``) unblocks the motion instead.

Run:  python examples/speculation_legality.py
"""

from repro import ScheduleLevel, rs6k
from repro.ir import format_function, gpr, parse_function
from repro.sched import global_schedule
from repro.sim import execute

X_EXAMPLE = """
function xexample
B1:
    C  cr0=r1,r2          ; cond: r1 < r2
    AI r20=r1,1           ; filler work
    BF B3,cr0,0x1/lt
B2:
    LI r10=5              ; x = 5
    B  B4
B3:
    LI r10=3              ; x = 3
B4:
    CALL print(r10)       ; print(x)
    RET
"""


def show_x_example() -> None:
    func = parse_function(X_EXAMPLE)
    print("Before scheduling:")
    print(format_function(func))

    report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                             rename_on_demand=False)
    print("After speculative scheduling:")
    print(format_function(func))
    print("Motions:", ", ".join(map(repr, report.motions)) or "(none)")

    li_moves = [m for m in report.speculative_motions if m.opcode == "LI"]
    assert len(li_moves) == 1, "exactly one x-definition may move!"
    print(f"\n-> only one definition of x moved ({li_moves[0]!r});")
    print("   the dynamic live-on-exit update blocked its twin.")

    for r1, r2, want in ((0, 9, 5), (9, 0, 3)):
        printed = []
        execute(func, regs={gpr(1): r1, gpr(2): r2},
                call_handlers={"print":
                               lambda a: printed.append(a[0]) or []})
        status = "ok" if printed == [want] else "WRONG"
        print(f"   cond={'true' if r1 < r2 else 'false'}: "
              f"printed {printed[0]} (expected {want}) [{status}]")


MINMAX_EXCERPT = """
function twin_compares
B1:
    L  r12=a(r31,4)
    LU r0,r31=a(r31,8)
    C  cr7=r12,r0
    BF B3,cr7,0x2/gt
B2:
    C  cr6=r12,r30        ; twin #1 defines cr6
    BT join,cr6,0x2/gt
B2x:
    B  join
B3:
    C  cr6=r0,r30         ; twin #2 also defines cr6 -- needs a rename
    BF join,cr6,0x2/gt
join:
    AI r29=r29,2
"""


def show_renaming() -> None:
    func = parse_function(MINMAX_EXCERPT)
    report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE)
    print("\nThe Figure 6 contrast -- twin compares with block-local webs:")
    print(format_function(func))
    spec = report.speculative_motions
    assert len(spec) == 2, "both compares should move (one renamed)"
    print(f"-> both compares moved into B1 ({spec!r});")
    print("   the second got a fresh condition register, exactly like the")
    print("   paper's I12 (cr6 -> cr5) in Figure 6.")


if __name__ == "__main__":
    show_x_example()
    show_renaming()
