int minmax(int a[], int n, int out[]) {
    int min = a[0]; int max = min; int i = 1;
    while (i < n) {
        int u = a[i]; int v = a[i + 1];
        if (u > v) { if (u > max) max = u; if (v < min) min = v; }
        else       { if (v > max) max = v; if (u < min) min = u; }
        i = i + 2;
    }
    out[0] = min; out[1] = max; return 0;
}
