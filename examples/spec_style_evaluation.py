#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables (Figures 7 and 8).

The four SPEC'89 programs are replaced by structurally-matched mini-C
kernels (see repro/bench/programs.py for the correspondence argument).
Prints both tables side by side with the paper's numbers.

Run:  python examples/spec_style_evaluation.py
"""

from repro.bench import (
    figure7_table,
    figure8_table,
    format_figure7,
    format_figure8,
)

PAPER_FIG7 = {"LI": (206, 13), "EQNTOTT": (78, 17),
              "ESPRESSO": (465, 12), "GCC": (2457, 13)}
PAPER_FIG8 = {"LI": (312, 2.0, 6.9), "EQNTOTT": (45, 7.1, 7.3),
              "ESPRESSO": (106, -0.5, 0.0), "GCC": (76, -1.5, 0.0)}


def main() -> None:
    print("Measuring run-time improvement (Figure 8)...")
    rti_rows = figure8_table()
    print()
    print(format_figure8(rti_rows))
    print()
    print("Paper's Figure 8 for comparison:")
    print(f"{'PROGRAM':<12} {'BASE(s)':>8} {'USEFUL':>8} {'SPECULATIVE':>12}")
    for name, (base, useful, spec) in PAPER_FIG8.items():
        print(f"{name:<12} {base:>8} {useful:>7.1f}% {spec:>11.1f}%")
    print()
    print("Shape check:")
    by_name = {r.paper_name: r for r in rti_rows}
    checks = [
        ("LI: speculative dominant",
         by_name["LI"].rti_speculative > by_name["LI"].rti_useful),
        ("EQNTOTT: useful carries it",
         by_name["EQNTOTT"].rti_useful
         > 0.8 * by_name["EQNTOTT"].rti_speculative),
        ("ESPRESSO: flat", abs(by_name["ESPRESSO"].rti_useful) < 5),
        ("GCC: flat", abs(by_name["GCC"].rti_useful) < 5),
    ]
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'MISMATCH'}] {label}")

    print()
    print("Measuring compile-time overhead (Figure 7)...")
    cto_rows = figure7_table(repeats=5)
    print()
    print(format_figure7(cto_rows))
    print()
    print("Paper's Figure 7 for comparison:")
    print(f"{'PROGRAM':<12} {'BASE(s)':>8} {'CTO':>6}")
    for name, (base, cto) in PAPER_FIG7.items():
        print(f"{name:<12} {base:>8} {cto:>5}%")
    print()
    print("(Paper seconds are 1990 XL-compiler wall clock on real SPEC")
    print(" sources; ours are this Python pipeline on the kernels. The")
    print(" reproduced quantity is the positive overhead of the global")
    print(" scheduling passes.)")


if __name__ == "__main__":
    main()
