#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Compiles the Figure 1 minmax program at the paper's three compiler levels
(BASE / useful / useful+speculative), prints the Figure 2/5/6-style
listings of the loop, runs each binary on the same data through the
RS/6K cycle simulator, and reports cycles per element.

Run:  python examples/quickstart.py
"""

import random

from repro import ScheduleLevel, compile_c
from repro.bench import MINMAX_C


def main() -> None:
    rng = random.Random(1991)
    n = 200
    data = [rng.randrange(-10_000, 10_000) for _ in range(n + 1)]

    print("The Figure 1 program:")
    print(MINMAX_C)

    results = {}
    for level in (ScheduleLevel.NONE, ScheduleLevel.USEFUL,
                  ScheduleLevel.SPECULATIVE):
        compiled = compile_c(MINMAX_C, level=level)
        unit = compiled["minmax"]
        run = unit.run(data, n - 1, [0, 0])
        results[level] = (unit, run)

        title = {
            ScheduleLevel.NONE: "BASE (basic-block scheduling only)",
            ScheduleLevel.USEFUL: "USEFUL global scheduling (Figure 5)",
            ScheduleLevel.SPECULATIVE:
                "USEFUL + 1-branch SPECULATIVE (Figure 6)",
        }[level]
        print("=" * 70)
        print(title)
        print("=" * 70)
        print(unit.assembly())
        lo, hi = run.arrays[1]
        print(f"-> min={lo} max={hi}  "
              f"cycles={run.cycles}  instructions={run.instructions}  "
              f"IPC={run.timing.ipc:.2f}")
        print()

    base = results[ScheduleLevel.NONE][1].cycles
    print("Summary (lower is better):")
    for level, (_unit, run) in results.items():
        gain = 100.0 * (base - run.cycles) / base
        print(f"  {level.value:<12} {run.cycles:>7} cycles "
              f"({gain:+.1f}% vs BASE)")

    # sanity: every level computes the same answer
    answers = {tuple(run.arrays[1]) for _u, run in results.values()}
    assert len(answers) == 1, "scheduling must preserve semantics!"
    print("\nAll three levels computed identical results.")


if __name__ == "__main__":
    main()
