#!/usr/bin/env python3
"""Exploring the parametric machine description (Section 2).

The scheduling framework is "based on the parametric description of the
machine architecture, which spans a range of superscalar and VLIW
machines"; Section 7 predicts bigger payoffs on wider machines.  This
example sweeps the machine family -- and a custom machine with exaggerated
delays -- over a kernel, showing how the same source schedules differently
per target.

Run:  python examples/machine_design_space.py
"""

from repro import (
    DelayModel,
    MachineModel,
    ScheduleLevel,
    compile_c,
    superscalar,
)
from repro.ir import UnitType
from repro.machine import rs6k, scalar_pipelined, vliw_like

KERNEL = """
int polyeval(int coeff[], int n, int x) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc * x + coeff[i];
    }
    return acc;
}
"""

#: a hypothetical machine with a very deep load pipe and slow compares
DEEP_PIPES = MachineModel(
    name="deep-pipes",
    units={UnitType.FXU: 2, UnitType.FPU: 1, UnitType.BRU: 1},
    delays=DelayModel(load_use=4, fixed_compare_branch=6),
)

MACHINES = [scalar_pipelined(), rs6k(), superscalar(2), superscalar(4),
            vliw_like(8), DEEP_PIPES]


def main() -> None:
    from repro.sim import wrap32

    coeff = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, 8]
    x = 7
    expected = 0
    for c in coeff:
        expected = wrap32(expected * x + c)  # 32-bit machine arithmetic

    print(f"{'machine':<12} {'width':>5} {'BASE':>8} {'scheduled':>10} "
          f"{'RTI':>7}")
    for machine in MACHINES:
        cycles = {}
        for level in (ScheduleLevel.NONE, ScheduleLevel.SPECULATIVE):
            result = compile_c(KERNEL, machine=machine, level=level)
            run = result["polyeval"].run(list(coeff), len(coeff), x)
            assert run.return_value == expected
            cycles[level] = run.cycles
        base = cycles[ScheduleLevel.NONE]
        sched = cycles[ScheduleLevel.SPECULATIVE]
        rti = 100.0 * (base - sched) / base
        print(f"{machine.name:<12} {machine.total_issue_width:>5} "
              f"{base:>8} {sched:>10} {rti:>6.1f}%")

    print()
    print("Scheduled inner loop on the RS/6K vs the deep-pipe machine")
    print("(same source, different delays => different placements):")
    for machine in (rs6k(), DEEP_PIPES):
        result = compile_c(KERNEL, machine=machine,
                           level=ScheduleLevel.SPECULATIVE)
        print(f"--- {machine.name} " + "-" * 40)
        print(result["polyeval"].assembly())


if __name__ == "__main__":
    main()
