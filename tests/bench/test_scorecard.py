"""The cross-model scorecard: structure, gates, determinism, golden, CLI.

The golden file pins the rs6k column of the matrix byte-for-byte: any
cycle count, BSP bound or flag that moves is a behaviour change someone
must sign off on with ``pytest --update-goldens``.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.bench.programs import MINMAX_WORKLOAD
from repro.bench.scorecard import (
    SCORECARD_WORKLOADS,
    Scorecard,
    ScorecardCell,
    format_scorecard,
    run_scorecard,
)

#: a single-program, single-machine card: enough structure, fast to run
FAST = dict(machines=("ss2",), workloads=(MINMAX_WORKLOAD,))


class TestMatrixStructure:
    def test_one_cell_per_program_machine_level(self):
        card = run_scorecard(**FAST)
        assert len(card.cells) == 1 * 1 * 3
        assert card.programs == ("minmax",)
        assert card.levels == ("none", "useful", "speculative")

    def test_every_gate_passes_on_the_shipped_compiler(self):
        card = run_scorecard(**FAST)
        assert card.ok
        for cell in card.cells:
            assert cell.verified
            assert cell.engines_agree
            assert cell.oracle_ok
            assert cell.bsp_ok
            assert cell.cycles >= cell.bsp_lower_bound

    def test_scheduling_helps_on_minmax(self):
        card = run_scorecard(**FAST)
        none = card.cell("minmax", "ss2", "none").cycles
        spec = card.cell("minmax", "ss2", "speculative").cycles
        assert spec <= none

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError, match="bogus"):
            run_scorecard(machines=("bogus",))


class TestDeterminism:
    def test_json_is_byte_stable(self):
        first = run_scorecard(**FAST).to_json()
        second = run_scorecard(**FAST).to_json()
        assert first == second

    def test_json_round_trips(self):
        card = run_scorecard(**FAST)
        payload = json.loads(card.to_json())
        assert payload["ok"] is True
        assert payload["machines"] == ["ss2"]
        assert len(payload["cells"]) == 3

    def test_golden_rs6k_matrix(self, golden):
        card = run_scorecard(machines=("rs6k",),
                             workloads=SCORECARD_WORKLOADS)
        golden("scorecard_rs6k.json", card.to_json())


class TestFailurePropagation:
    def _card_with_failure(self) -> Scorecard:
        card = Scorecard(seed=1, machines=("rs6k",), programs=("p",),
                         levels=("none",))
        card.cells.append(ScorecardCell(
            program="p", machine="rs6k", level="none",
            failures=["simulated 1 cycles beat the BSP lower bound 10"]))
        return card

    def test_failing_cell_fails_the_card(self):
        card = self._card_with_failure()
        assert not card.ok
        assert card.failures == [
            "[p/rs6k/none] simulated 1 cycles beat the BSP lower bound 10"]

    def test_rendered_table_surfaces_failures(self):
        card = self._card_with_failure()
        text = format_scorecard(card)
        assert "FAIL" in text
        assert "beat the BSP lower bound" in text


class TestCLI:
    def test_writes_json_and_prints_table(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        code = main(["scorecard", "--machines", "ss2", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "machine ss2 [ok]" in printed
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["machines"] == ["ss2"]

    def test_unknown_machine_is_one_line_exit_2(self, capsys):
        code = main(["scorecard", "--machines", "rs6k,bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown machine 'bogus'" in err
        assert "rs6k" in err  # lists what is available
        assert "Traceback" not in err

    def test_verbose_prints_cells(self, capsys):
        code = main(["scorecard", "--machines", "ss1", "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minmax/ss1/speculative" in out
