"""Workload sanity: every kernel compiles, runs, and matches its oracle."""

import random

import pytest

from repro import ScheduleLevel, compile_c
from repro.bench import MINMAX_WORKLOAD, WORKLOADS


ALL = WORKLOADS + [MINMAX_WORKLOAD]


@pytest.mark.parametrize("workload", ALL, ids=lambda w: w.name)
def test_reference_matches_compiled(workload):
    rng = random.Random(99)
    args = workload.make_args(rng)
    result = compile_c(workload.source, level=ScheduleLevel.SPECULATIVE)
    unit = result[workload.entry]
    run = unit.run(*[list(a) if isinstance(a, list) else a for a in args],
                   call_handlers=workload.call_handlers)
    expected = workload.reference(
        *[list(a) if isinstance(a, list) else a for a in args])
    assert run.return_value == expected


@pytest.mark.parametrize("workload", ALL, ids=lambda w: w.name)
def test_deterministic_inputs(workload):
    a1 = workload.make_args(random.Random(5))
    a2 = workload.make_args(random.Random(5))
    assert a1 == a2


def test_workloads_cover_the_four_spec_programs():
    assert [w.paper_name for w in WORKLOADS] == \
        ["LI", "EQNTOTT", "ESPRESSO", "GCC"]


def test_li_like_has_many_small_blocks():
    # the structural property Figure 8's LI row depends on
    result = compile_c(WORKLOADS[0].source, level=ScheduleLevel.NONE)
    func = result["li_like"].func
    sizes = [len(b) for b in func.blocks]
    assert len(func.blocks) >= 10
    assert sorted(sizes)[len(sizes) // 2] <= 4  # median block is small


def test_gcc_like_calls_on_every_arm():
    from repro.ir import Opcode
    result = compile_c(WORKLOADS[3].source, level=ScheduleLevel.NONE)
    func = result["gcc_like"].func
    calls = [i for i in func.instructions() if i.opcode is Opcode.CALL]
    assert len(calls) >= 3


def test_espresso_like_stores_every_iteration():
    from repro.ir import Opcode
    result = compile_c(WORKLOADS[2].source, level=ScheduleLevel.NONE)
    func = result["espresso_like"].func
    stores = [i for i in func.instructions() if i.opcode is Opcode.ST]
    assert len(stores) >= 2
