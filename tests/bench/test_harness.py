"""Harness tests: the Figures 7/8 tables and their paper-shape assertions.

The paper's qualitative claims (Section 6):

* LI: "the speculative scheduling is dominant";
* EQNTOTT: "most of the improvement comes from the useful scheduling
  only" (7.1% useful vs 7.3% speculative);
* ESPRESSO and GCC: "no improvement is observed".

Absolute percentages differ (our workloads are pure hot loops; SPEC
programs spend time everywhere), but the ordering must hold.
"""

import pytest

from repro.bench import (
    WORKLOADS,
    figure8_table,
    format_figure7,
    format_figure8,
    measure_cto,
    measure_rti,
)


@pytest.fixture(scope="module")
def fig8():
    return {row.paper_name: row for row in figure8_table()}


class TestFigure8Shape:
    def test_all_rows_present(self, fig8):
        assert set(fig8) == {"LI", "EQNTOTT", "ESPRESSO", "GCC"}

    def test_li_speculative_dominant(self, fig8):
        row = fig8["LI"]
        assert row.rti_speculative > row.rti_useful + 5
        assert row.rti_speculative > 10

    def test_eqntott_useful_dominant(self, fig8):
        row = fig8["EQNTOTT"]
        assert row.rti_useful > 10
        # speculative adds only a sliver on top of useful
        assert row.rti_speculative >= row.rti_useful
        assert row.rti_speculative - row.rti_useful < 5

    def test_espresso_no_improvement(self, fig8):
        row = fig8["ESPRESSO"]
        assert abs(row.rti_useful) < 3
        assert abs(row.rti_speculative) < 5

    def test_gcc_no_meaningful_improvement(self, fig8):
        row = fig8["GCC"]
        assert abs(row.rti_useful) < 5
        assert abs(row.rti_speculative) < 8

    def test_big_winners_beat_non_winners(self, fig8):
        # who-wins ordering across workload classes
        for winner in ("LI", "EQNTOTT"):
            for loser in ("ESPRESSO", "GCC"):
                assert fig8[winner].rti_speculative > \
                    fig8[loser].rti_speculative

    def test_rti_arithmetic(self, fig8):
        row = fig8["LI"]
        assert row.rti_useful == pytest.approx(
            100.0 * (row.base_cycles - row.useful_cycles) / row.base_cycles)


class TestHarnessMechanics:
    def test_verification_catches_divergence(self):
        import dataclasses
        broken = dataclasses.replace(
            WORKLOADS[1], reference=lambda a, b, n: -12345)
        with pytest.raises(AssertionError, match="oracle"):
            measure_rti(broken)

    def test_seed_reproducibility(self):
        r1 = measure_rti(WORKLOADS[1], seed=42)
        r2 = measure_rti(WORKLOADS[1], seed=42)
        assert (r1.base_cycles, r1.useful_cycles, r1.speculative_cycles) == \
            (r2.base_cycles, r2.useful_cycles, r2.speculative_cycles)

    def test_cto_positive(self):
        # Figure 7: global scheduling costs compile time (paper: 12-17%)
        row = measure_cto(WORKLOADS[1], repeats=3)
        assert row.scheduled_seconds > row.base_seconds
        assert row.cto > 0

    def test_formatting(self, fig8):
        text = format_figure8(list(fig8.values()))
        assert "Figure 8" in text and "EQNTOTT" in text and "%" in text
        cto_rows = [measure_cto(WORKLOADS[0], repeats=1)]
        text7 = format_figure7(cto_rows)
        assert "Figure 7" in text7 and "CTO" in text7


class TestHarnessRegressions:
    def test_rti_raises_on_cross_level_divergence(self, monkeypatch):
        """Even when every level satisfies the scalar oracle, differing
        array contents between levels must raise."""
        from repro.bench import harness as harness_mod
        from repro.sched.candidates import ScheduleLevel

        real = harness_mod._run_at_level

        def perturbed(workload, level, machine, args):
            run = real(workload, level, machine, args)
            if level is ScheduleLevel.SPECULATIVE and run.arrays:
                run.arrays[0] = list(run.arrays[0])
                run.arrays[0][0] ^= 1
            return run

        monkeypatch.setattr(harness_mod, "_run_at_level", perturbed)
        with pytest.raises(AssertionError, match="diverged"):
            measure_rti(WORKLOADS[0])

    def test_cto_handles_zero_base_seconds(self):
        from repro.bench.harness import CTORow

        row = CTORow(workload="w", paper_name="W",
                     base_seconds=0.0, scheduled_seconds=0.5)
        assert row.cto == 0.0
