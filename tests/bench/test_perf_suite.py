"""Structural checks for the tracked perf suite (benchmarks/perf/).

Runs the individual bench functions on a tiny workload so the suite
cannot rot silently; the real campaign (full corpus, committed
``BENCH_pipeline.json``) runs in CI via
``python benchmarks/perf/run_pipeline_bench.py``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "perf" / "run_pipeline_bench.py"


@pytest.fixture(scope="module")
def suite():
    spec = importlib.util.spec_from_file_location("run_pipeline_bench",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def largest(suite):
    corpus = suite._corpus(3)
    index, program, func = suite._largest_program(corpus)
    return corpus, index, program, func


def test_corpus_is_fixed_seed(suite):
    a = suite._corpus(2)
    b = suite._corpus(2)
    assert [p.source for p in a] == [p.source for p in b]


def test_largest_program_selection(suite, largest):
    corpus, index, program, func = largest
    assert 0 <= index < len(corpus)
    assert corpus[index] is program
    assert sum(len(b.instrs) for b in func.blocks) > 0


def test_bench_region_ddg_shape(suite, largest):
    _, _, _, func = largest
    result = suite.bench_region_ddg(func, repeats=1)
    assert set(result) == {"region_blocks", "region_instrs",
                           "reachable_pairs", "edges", "new_ms",
                           "reference_ms", "speedup"}
    assert result["new_ms"] > 0 and result["reference_ms"] > 0
    assert result["speedup"] == pytest.approx(
        result["reference_ms"] / result["new_ms"])


def test_bench_schedule_shape(suite, largest):
    _, _, _, func = largest
    result = suite.bench_schedule(func, repeats=1)
    assert set(result) == {"instrs", "new_ms", "reference_ms", "speedup"}


def test_identity_check_passes_on_small_program(suite, largest):
    _, _, program, _ = largest
    identity = suite.check_schedule_identity(program)
    assert identity["mismatches"] == []
    assert identity["verifier_enabled"] is True
    assert identity["compiles"] == 2 * len(identity["machines"]) * len(
        identity["levels"])


def test_committed_scorecard_is_well_formed():
    """The repo ships the last full run; keep it parseable and gated."""
    data = json.loads((REPO_ROOT / "BENCH_pipeline.json").read_text())
    assert {"meta", "identity", "region_ddg", "compile", "schedule",
            "fuzz", "thresholds"} <= set(data)
    assert data["identity"]["mismatches"] == []
    assert data["thresholds"]["region_ddg_ok"] is True
    assert data["thresholds"]["fuzz_ok"] is True
    assert data["thresholds"]["schedule_ok"] is True


@pytest.fixture(scope="module")
def micro():
    spec = importlib.util.spec_from_file_location(
        "run_sched_microbench",
        REPO_ROOT / "benchmarks" / "perf" / "run_sched_microbench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_microbench_names_engine_and_passes_its_gate(micro):
    """The committed ``BENCH_sched_micro.json`` must say which engine it
    measured, carry the floors it was gated against, and actually clear
    them -- a regression committed alongside a code change fails here
    even before CI reruns the bench."""
    data = json.loads((REPO_ROOT / "BENCH_sched_micro.json").read_text())
    assert data["meta"]["engine"] == "soa"
    assert data["meta"]["gated"] is True
    assert data["gate_min_speedup"] == {
        str(k): v for k, v in micro.GATE_MIN_SPEEDUP.items()}
    assert micro.gate(data["sizes"]) == []
    by_chunk = {row["chunk"]: row for row in data["sizes"]}
    # the ISSUE-level target: >= 10x over the scan engine at chunk 30
    assert by_chunk[30]["speedup"] >= 10.0


def test_microbench_gate_flags_floor_misses(micro):
    rows = [{"chunk": 30, "speedup": 9.0}, {"chunk": 4, "speedup": 1.3}]
    messages = micro.gate(rows)
    assert len(messages) == 1 and "chunk 30" in messages[0]


def test_microbench_region_timer_times_engine_only(micro):
    """The accumulator charges time spent inside ``schedule_region``
    (restoring the real binding afterwards) and nothing else."""
    import repro.sched.driver as drv
    from repro.compiler import compile_c
    from repro.machine.configs import CONFIGS
    from repro.sched.candidates import ScheduleLevel

    real = drv.schedule_region
    machine = CONFIGS["rs6k"]()
    unit = compile_c(
        "int f(int a[], int n) {\n"
        "    int s = 0; int i = 0;\n"
        "    while (i < n) { s = s + a[i]; i = i + 1; }\n"
        "    return s;\n"
        "}\n",
        machine=machine, level=ScheduleLevel.NONE)["f"]
    with micro.region_timer() as acc:
        assert drv.schedule_region is not real
        assert acc["s"] == 0.0
        drv.global_schedule(unit.func, machine, ScheduleLevel.SPECULATIVE)
    assert acc["s"] > 0.0
    assert drv.schedule_region is real
