"""Structural checks for the tracked perf suite (benchmarks/perf/).

Runs the individual bench functions on a tiny workload so the suite
cannot rot silently; the real campaign (full corpus, committed
``BENCH_pipeline.json``) runs in CI via
``python benchmarks/perf/run_pipeline_bench.py``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "perf" / "run_pipeline_bench.py"


@pytest.fixture(scope="module")
def suite():
    spec = importlib.util.spec_from_file_location("run_pipeline_bench",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def largest(suite):
    corpus = suite._corpus(3)
    index, program, func = suite._largest_program(corpus)
    return corpus, index, program, func


def test_corpus_is_fixed_seed(suite):
    a = suite._corpus(2)
    b = suite._corpus(2)
    assert [p.source for p in a] == [p.source for p in b]


def test_largest_program_selection(suite, largest):
    corpus, index, program, func = largest
    assert 0 <= index < len(corpus)
    assert corpus[index] is program
    assert sum(len(b.instrs) for b in func.blocks) > 0


def test_bench_region_ddg_shape(suite, largest):
    _, _, _, func = largest
    result = suite.bench_region_ddg(func, repeats=1)
    assert set(result) == {"region_blocks", "region_instrs",
                           "reachable_pairs", "edges", "new_ms",
                           "reference_ms", "speedup"}
    assert result["new_ms"] > 0 and result["reference_ms"] > 0
    assert result["speedup"] == pytest.approx(
        result["reference_ms"] / result["new_ms"])


def test_bench_schedule_shape(suite, largest):
    _, _, _, func = largest
    result = suite.bench_schedule(func, repeats=1)
    assert set(result) == {"instrs", "new_ms", "reference_ms", "speedup"}


def test_identity_check_passes_on_small_program(suite, largest):
    _, _, program, _ = largest
    identity = suite.check_schedule_identity(program)
    assert identity["mismatches"] == []
    assert identity["verifier_enabled"] is True
    assert identity["compiles"] == 2 * len(identity["machines"]) * len(
        identity["levels"])


def test_committed_scorecard_is_well_formed():
    """The repo ships the last full run; keep it parseable and gated."""
    data = json.loads((REPO_ROOT / "BENCH_pipeline.json").read_text())
    assert {"meta", "identity", "region_ddg", "compile", "schedule",
            "fuzz", "thresholds"} <= set(data)
    assert data["identity"]["mismatches"] == []
    assert data["thresholds"]["region_ddg_ok"] is True
    assert data["thresholds"]["fuzz_ok"] is True
