"""Property tests: malformed machine descriptions die at construction.

Before PR 8 a zero unit count or a negative delay surfaced as a deep
scheduler or simulator error (a hang, a division by zero, a nonsense
schedule); now :class:`MachineValidationError` rejects the description
the moment it is built.  Hypothesis sweeps the rejection surface; the
zoo sanity checks pin every shipped config as well-formed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Opcode, UnitType
from repro.machine import (
    CONFIGS,
    BufferModel,
    Cluster,
    DelayModel,
    MachineModel,
    MachineValidationError,
    buffers,
    cluster,
)

#: anything that is not a genuine positive int: zero/negative ints,
#: bools (Python's bool subclasses int!), floats, strings, None
not_a_positive_int = st.one_of(
    st.integers(max_value=0),
    st.booleans(),
    st.floats(),
    st.text(max_size=3),
    st.none(),
)

not_a_nonneg_int = st.one_of(
    st.integers(max_value=-1),
    st.booleans(),
    st.floats(),
    st.text(max_size=3),
    st.none(),
)

unit_types = st.sampled_from(list(UnitType))

#: well-formed unit tables: at least one unit type, counts 1..8
valid_units = st.dictionaries(unit_types, st.integers(1, 8), min_size=1)


class TestUnitValidation:
    @given(valid_units, unit_types, not_a_positive_int)
    @settings(max_examples=60, deadline=None)
    def test_bad_unit_count_rejected(self, units, unit, count):
        units[unit] = count
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units=units)

    def test_empty_units_rejected(self):
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units={})

    def test_non_unittype_key_rejected(self):
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units={"FXU": 2})

    @given(valid_units)
    @settings(max_examples=40, deadline=None)
    def test_valid_units_accepted(self, units):
        machine = MachineModel(name="ok", units=units)
        assert machine.total_issue_width >= 1
        for unit, count in units.items():
            assert machine.unit_count(unit) == count


class TestDelayValidation:
    FIELDS = ("load_use", "fixed_compare_branch", "float_op_use",
              "float_compare_branch")

    @given(st.sampled_from(FIELDS), not_a_nonneg_int)
    @settings(max_examples=60, deadline=None)
    def test_bad_delay_rejected(self, name, value):
        with pytest.raises(MachineValidationError):
            DelayModel(**{name: value})

    @given(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12),
           st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_nonneg_delays_accepted(self, a, b, c, d):
        model = DelayModel(load_use=a, fixed_compare_branch=b,
                           float_op_use=c, float_compare_branch=d)
        assert model.load_use == a

    def test_delays_must_be_a_delay_model(self):
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units={UnitType.FXU: 1},
                         delays={"load_use": 1})


class TestIssueWidthAndExecTimes:
    # issue_width=None is legal (no cap), so exclude it from the bads
    bad_widths = st.one_of(st.integers(max_value=0), st.booleans(),
                           st.floats(), st.text(max_size=3))

    @given(valid_units, bad_widths)
    @settings(max_examples=60, deadline=None)
    def test_bad_issue_width_rejected(self, units, width):
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units=units, issue_width=width)

    @given(valid_units, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_valid_issue_width_accepted(self, units, width):
        machine = MachineModel(name="ok", units=units, issue_width=width)
        assert machine.total_issue_width <= width

    @given(valid_units, not_a_positive_int)
    @settings(max_examples=60, deadline=None)
    def test_bad_exec_time_rejected(self, units, cycles):
        with pytest.raises(MachineValidationError):
            MachineModel(name="bad", units=units,
                         exec_times={Opcode.MUL: cycles})


class TestClusterValidation:
    def _machine(self, clusters):
        return MachineModel(name="bad", units={UnitType.FXU: 4},
                            clusters=clusters)

    def test_clusters_must_partition_units(self):
        # 2 + 1 != the machine's 4 FXUs
        with pytest.raises(MachineValidationError):
            self._machine((cluster("c0", {UnitType.FXU: 2}, 2),
                           cluster("c1", {UnitType.FXU: 1}, 2)))

    def test_cluster_cannot_add_foreign_units(self):
        with pytest.raises(MachineValidationError):
            self._machine((cluster("c0", {UnitType.FXU: 4}, 2),
                           cluster("c1", {UnitType.FPU: 1}, 1)))

    def test_exact_partition_accepted(self):
        machine = self._machine((cluster("c0", {UnitType.FXU: 2}, 2),
                                 cluster("c1", {UnitType.FXU: 2}, 2)))
        assert machine.clusters[0].unit_count(UnitType.FXU) == 2

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(MachineValidationError):
            self._machine((cluster("c", {UnitType.FXU: 2}, 2),
                           cluster("c", {UnitType.FXU: 2}, 2)))

    def test_empty_cluster_tuple_rejected(self):
        with pytest.raises(MachineValidationError):
            self._machine(())

    @given(not_a_positive_int)
    @settings(max_examples=40, deadline=None)
    def test_bad_cluster_width_rejected(self, width):
        with pytest.raises(MachineValidationError):
            self._machine((cluster("c0", {UnitType.FXU: 4}, width),))

    @given(not_a_positive_int)
    @settings(max_examples=40, deadline=None)
    def test_bad_cluster_count_rejected(self, count):
        with pytest.raises(MachineValidationError):
            self._machine((
                Cluster("c0", ((UnitType.FXU, count),), 2),))

    def test_cluster_without_units_rejected(self):
        with pytest.raises(MachineValidationError):
            self._machine((Cluster("c0", (), 2),
                           cluster("c1", {UnitType.FXU: 4}, 2)))


class TestBufferValidation:
    def _machine(self, bufs):
        return MachineModel(name="bad", units={UnitType.FXU: 2},
                            buffers=bufs)

    @given(not_a_positive_int)
    @settings(max_examples=40, deadline=None)
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(MachineValidationError):
            self._machine(BufferModel(
                capacities=((UnitType.FXU, capacity),)))

    def test_capacity_for_missing_unit_rejected(self):
        with pytest.raises(MachineValidationError):
            self._machine(buffers({UnitType.FPU: 2}))

    @given(not_a_nonneg_int)
    @settings(max_examples=40, deadline=None)
    def test_bad_drain_penalty_rejected(self, penalty):
        with pytest.raises(MachineValidationError):
            self._machine(BufferModel(
                capacities=((UnitType.FXU, 2),), drain_penalty=penalty))

    @given(not_a_nonneg_int)
    @settings(max_examples=40, deadline=None)
    def test_bad_free_after_rejected(self, free_after):
        with pytest.raises(MachineValidationError):
            self._machine(BufferModel(
                capacities=((UnitType.FXU, 2),), free_after=free_after))

    def test_valid_buffers_accepted(self):
        machine = self._machine(buffers({UnitType.FXU: 3},
                                        drain_penalty=1, free_after=2))
        assert machine.buffers.capacity(UnitType.FXU) == 3
        assert machine.buffers.capacity(UnitType.FPU) is None


class TestZooIsWellFormed:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_config_constructs(self, name):
        machine = CONFIGS[name]()
        assert machine.total_issue_width >= 1
        assert machine.unit_types

    def test_clustered_config_partitions(self):
        machine = CONFIGS["clus2x2"]()
        summed: dict = {}
        for c in machine.clusters:
            for unit, count in c.units:
                summed[unit] = summed.get(unit, 0) + count
        assert summed == machine.units

    def test_exposed_datapath_has_buffers(self):
        machine = CONFIGS["xdp"]()
        assert machine.buffers is not None
        assert machine.buffers.drain_penalty >= 0
