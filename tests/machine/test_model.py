"""Tests for the parametric machine description (Section 2)."""

import pytest

from repro.ir import Instruction, MemRef, Opcode, UnitType, cr, fpr, gpr
from repro.machine import (
    CONFIGS,
    DelayModel,
    MachineModel,
    RS6K,
    ideal_no_delays,
    rs6k,
    scalar_pipelined,
    superscalar,
    vliw_like,
)


def flow(machine, producer, consumer, reg):
    return machine.flow_delay(producer, consumer, reg)


class TestRS6KModel:
    """Section 2.1's concrete numbers."""

    def test_unit_mix(self):
        m = rs6k()
        assert m.unit_count(UnitType.FXU) == 1
        assert m.unit_count(UnitType.FPU) == 1
        assert m.unit_count(UnitType.BRU) == 1
        assert m.total_issue_width == 3

    def test_delayed_load_is_one_cycle(self):
        load = Instruction(Opcode.L, defs=(gpr(12),), uses=(gpr(31),),
                           mem=MemRef(gpr(31), 4))
        use = Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(12), gpr(2)))
        assert flow(RS6K, load, use, gpr(12)) == 1

    def test_load_update_base_not_delayed(self):
        # the updated base register is computed early: no load delay
        lu = Instruction(Opcode.LU, defs=(gpr(0), gpr(31)), uses=(gpr(31),),
                         mem=MemRef(gpr(31), 8))
        use = Instruction(Opcode.AI, defs=(gpr(31),), uses=(gpr(31),), imm=4)
        assert flow(RS6K, lu, use, gpr(31)) == 0
        assert flow(RS6K, lu, use, gpr(0)) == 1

    def test_fixed_compare_branch_three_cycles(self):
        cmp_i = Instruction(Opcode.C, defs=(cr(7),), uses=(gpr(1), gpr(2)))
        br = Instruction(Opcode.BF, uses=(cr(7),), target="x", mask=0x2)
        assert flow(RS6K, cmp_i, br, cr(7)) == 3

    def test_float_compare_branch_five_cycles(self):
        fc = Instruction(Opcode.FC, defs=(cr(1),), uses=(fpr(1), fpr(2)))
        br = Instruction(Opcode.BT, uses=(cr(1),), target="x", mask=0x1)
        assert flow(RS6K, fc, br, cr(1)) == 5

    def test_float_op_use_one_cycle(self):
        fa = Instruction(Opcode.FA, defs=(fpr(3),), uses=(fpr(1), fpr(2)))
        use = Instruction(Opcode.FM, defs=(fpr(4),), uses=(fpr(3), fpr(1)))
        assert flow(RS6K, fa, use, fpr(3)) == 0 + 1

    def test_plain_fixed_point_no_delay(self):
        add = Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        use = Instruction(Opcode.A, defs=(gpr(4),), uses=(gpr(1), gpr(2)))
        assert flow(RS6K, add, use, gpr(1)) == 0

    def test_exec_times(self):
        one = Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        mul = Instruction(Opcode.MUL, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        div = Instruction(Opcode.DIV, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        assert RS6K.exec_time(one) == 1
        assert RS6K.exec_time(mul) == 5
        assert RS6K.exec_time(div) == 19

    def test_result_latency(self):
        load = Instruction(Opcode.L, defs=(gpr(12),), uses=(gpr(31),),
                           mem=MemRef(gpr(31), 4))
        assert RS6K.result_latency(load, gpr(12)) == 2  # 1 exec + 1 delay


class TestParametricFamily:
    def test_superscalar_widths(self):
        assert superscalar(4).unit_count(UnitType.FXU) == 4
        assert superscalar(2).total_issue_width == 4

    def test_scalar_capped_at_one(self):
        m = scalar_pipelined()
        assert m.total_issue_width == 1

    def test_ideal_has_no_delays(self):
        m = ideal_no_delays()
        cmp_i = Instruction(Opcode.C, defs=(cr(0),), uses=(gpr(1), gpr(2)))
        br = Instruction(Opcode.BT, uses=(cr(0),), target="x", mask=0x1)
        assert flow(m, cmp_i, br, cr(0)) == 0

    def test_vliw_is_wide(self):
        assert vliw_like(8).total_issue_width >= 10

    def test_config_registry(self):
        for name, factory in CONFIGS.items():
            machine = factory()
            assert machine.total_issue_width >= 1, name

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            MachineModel("bad", {UnitType.FXU: -1})

    def test_extra_delay_rule_hook(self):
        def charge_loads_more(producer, consumer, reg):
            if producer.opcode.is_load:
                return 7
            return None

        m = rs6k()
        m.extra_delay_rules.append(charge_loads_more)
        load = Instruction(Opcode.L, defs=(gpr(1),), uses=(gpr(2),),
                           mem=MemRef(gpr(2), 0))
        use = Instruction(Opcode.LR, defs=(gpr(3),), uses=(gpr(1),))
        assert flow(m, load, use, gpr(1)) == 7

    def test_custom_delay_model(self):
        m = MachineModel("d", {UnitType.FXU: 1, UnitType.BRU: 1},
                         delays=DelayModel(fixed_compare_branch=9))
        cmp_i = Instruction(Opcode.C, defs=(cr(0),), uses=(gpr(1), gpr(2)))
        br = Instruction(Opcode.BT, uses=(cr(0),), target="x", mask=0x1)
        assert flow(m, cmp_i, br, cr(0)) == 9
