"""D and CP heuristic tests (Section 5.2)."""

import pytest

from repro.machine import rs6k
from repro.pdg import RegionPDG, build_block_ddg
from repro.sched import local_priorities, priority_key


@pytest.fixture
def bl1_priorities(figure2):
    machine = rs6k()
    block = figure2.block("CL.0")
    ddg = build_block_ddg(block, machine)
    return block, local_priorities(block, ddg, machine)


class TestDelayHeuristic:
    def test_figure2_bl1_values(self, bl1_priorities):
        block, prio = bl1_priorities
        i1, i2, i3, i4 = block.instrs
        d = {ins.uid: prio[id(ins)][0] for ins in block.instrs}
        # D(I4)=0; D(I3)=3 (compare->branch); D(I2)=3+1 (delayed load);
        # D(I1)=4 via the anti edge to I2 (zero delay)
        assert d[4] == 0
        assert d[3] == 3
        assert d[2] == 4
        assert d[1] == 4

    def test_bl10_values(self, figure2):
        machine = rs6k()
        block = figure2.block("CL.9")
        prio = local_priorities(block, build_block_ddg(block, machine),
                                machine)
        d = {ins.uid: prio[id(ins)][0] for ins in block.instrs}
        assert d[20] == 0
        assert d[19] == 3
        assert d[18] == 3  # through the zero-delay flow into I19


class TestCriticalPathHeuristic:
    def test_figure2_bl1_values(self, bl1_priorities):
        block, prio = bl1_priorities
        cp = {ins.uid: prio[id(ins)][1] for ins in block.instrs}
        # CP(I4)=1; CP(I3)=CP(I4)+3+1=5; CP(I2)=CP(I3)+1+1=7; CP(I1)=8
        assert cp[4] == 1
        assert cp[3] == 5
        assert cp[2] == 7
        assert cp[1] == 8

    def test_leaf_cp_is_exec_time(self, figure2):
        machine = rs6k()
        block = figure2.block("BL3")  # single LR
        prio = local_priorities(block, build_block_ddg(block, machine),
                                machine)
        (ins,) = block.instrs
        assert prio[id(ins)] == (0, 1)


class TestPriorityOrder:
    """The 7-step decision order of Section 5.2."""

    def test_useful_beats_speculative(self, bl1_priorities):
        block, prio = bl1_priorities
        i1 = block.instrs[0]
        low = priority_key(i1, useful=True, priorities=prio)
        high = priority_key(i1, useful=False, priorities=prio)
        assert low < high

    def test_larger_d_wins_within_class(self, bl1_priorities):
        block, prio = bl1_priorities
        i1, _, i3, _ = block.instrs  # D(I1)=4 > D(I3)=3
        assert priority_key(i1, useful=True, priorities=prio) < \
            priority_key(i3, useful=True, priorities=prio)

    def test_cp_breaks_d_ties(self, figure2):
        machine = rs6k()
        block = figure2.block("CL.0")
        ddg = build_block_ddg(block, machine)
        prio = dict(local_priorities(block, ddg, machine))
        i1, i2 = block.instrs[0], block.instrs[1]
        # force equal D, distinct CP
        prio[id(i1)] = (4, 9)
        prio[id(i2)] = (4, 7)
        assert priority_key(i1, useful=True, priorities=prio) < \
            priority_key(i2, useful=True, priorities=prio)

    def test_original_order_breaks_full_ties(self, figure2):
        block = figure2.block("CL.0")
        i1, i2 = block.instrs[0], block.instrs[1]
        prio = {id(i1): (1, 1), id(i2): (1, 1)}
        assert priority_key(i1, useful=True, priorities=prio) < \
            priority_key(i2, useful=True, priorities=prio)

    def test_class_dominates_all_numeric_heuristics(self, figure2):
        block = figure2.block("CL.0")
        i1, i2 = block.instrs[0], block.instrs[1]
        prio = {id(i1): (0, 0), id(i2): (99, 99)}
        # a useful instruction with terrible D/CP still beats a great
        # speculative one (the paper's rule 1/2 before 3-6)
        assert priority_key(i1, useful=True, priorities=prio) < \
            priority_key(i2, useful=False, priorities=prio)
