"""Regression: speculative motion must respect Definition 6's dominance
requirement.

Found by the differential fuzzer: in ``a > 0 || b > 0`` the second test
block does not dominate the join arm, so hoisting the arm's computation
into it loses the computation on the path that short-circuits through the
first test.  The scheduler used to admit every 1-branch CSPDG successor as
a speculative source; it must only admit blocks the destination strictly
dominates.
"""

import pytest

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.sched.candidates import ScheduleLevel, candidate_blocks
from repro.sched.regions import build_region_pdg, find_regions
from repro.xform.pipeline import PipelineConfig

DISJUNCTION = """
int g(int a, int b, int p[]) {
    int x = 1;
    if (a > 0 || b > 0) { x = (p[0] + 7) * b; }
    return x;
}
"""


@pytest.mark.parametrize("machine", ["rs6k", "scalar", "ss2"])
@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_short_circuit_join_is_not_miscompiled(machine, level):
    """(a=5, b=10): the `a > 0` path must still compute x = (p0+7)*b."""
    result = compile_c(DISJUNCTION, machine=CONFIGS[machine](), level=level)
    run = result["g"].run(5, 10, [-4, 0, 0, 0])
    assert run.return_value == (-4 + 7) * 10
    # the other three condition outcomes, for completeness
    assert result["g"].run(-1, 10, [-4, 0, 0, 0]).return_value == 30
    assert result["g"].run(-1, -2, [-4, 0, 0, 0]).return_value == 1


def test_speculative_candidates_are_dominated():
    """Every speculative source block must be strictly dominated by the
    destination (Definition 6: motion without duplication)."""
    func = compile_c(DISJUNCTION, level=ScheduleLevel.NONE)["g"].func
    for spec in find_regions(func):
        pdg = build_region_pdg(func, CONFIGS["rs6k"](), spec)
        for label in spec.member_labels:
            _, speculative = candidate_blocks(
                pdg, label, ScheduleLevel.SPECULATIVE)
            for block in speculative:
                assert pdg.dom.strictly_dominates(label, block), (
                    f"{block} offered to {label} without dominance")


def test_verifier_accepts_the_fixed_schedule():
    config = PipelineConfig(level=ScheduleLevel.SPECULATIVE, verify=True)
    result = compile_c(DISJUNCTION, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    for report in result["g"].report.verify_reports:
        assert report.ok
