"""Profile-guided speculation tests."""

from repro.ir import gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.sched import (
    BranchProfile,
    ScheduleLevel,
    global_schedule,
    make_profile_priority_fn,
    select_main_trace,
)
from repro.sim import execute, simulate_path_iterations

#: one delay-slot window, two competing speculative candidates from
#: mutually-exclusive arms; only one fits before the branch resolves
COMPETING = """
function competing
B1:
    L  r12=a(r31,4)
    C  cr7=r12,r0
    BF COLD,cr7,0x2/gt
HOT:
    MUL r20=r12,r12
    AI  r21=r20,1
    B   JOIN
COLD:
    MUL r22=r12,r12
    AI  r23=r22,7
JOIN:
    AI r29=r29,2
"""


def profiled(hot_runs: int, cold_runs: int) -> BranchProfile:
    profile = BranchProfile()
    for greater, runs in ((True, hot_runs), (False, cold_runs)):
        for _ in range(runs):
            func = parse_function(COMPETING)
            r0 = -100 if greater else 100  # r12 is a loaded 0 by default
            execution = execute(func, regs={gpr(0): r0, gpr(31): 0})
            profile.record(execution)
    return profile


class TestBranchProfile:
    def test_counts_accumulate(self):
        profile = profiled(3, 1)
        assert profile.count("B1") == 4
        assert profile.count("HOT") == 3
        assert profile.count("COLD") == 1
        assert profile.runs == 4

    def test_relative_frequency(self):
        profile = profiled(3, 1)
        assert profile.relative_frequency("HOT", "B1") == 0.75
        assert profile.relative_frequency("missing", "B1") == 0.0
        assert profile.relative_frequency("B1", "missing") == 0.0

    def test_hottest(self):
        profile = profiled(3, 1)
        assert profile.hottest() == "B1"
        assert not BranchProfile()
        assert profile


class TestProfileGuidedScheduling:
    def schedule_with(self, profile):
        func = parse_function(COMPETING)
        fn = (make_profile_priority_fn(profile, func)
              if profile is not None else None)
        # precise exit liveness: only the arm results and the join counter
        # survive the function, so the MUL temporaries are speculation fuel
        live = frozenset({gpr(21), gpr(23), gpr(29)})
        global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                        priority_fn=fn, live_at_exit=live)
        verify_function(func)
        return func

    def test_hot_arm_preferred(self):
        # with a HOT-skewed profile, HOT's MUL wins the delay-slot race
        profile = profiled(9, 1)
        func = self.schedule_with(profile)
        b1 = [i.uid for i in func.block("B1").instrs]
        hot_mul = 4   # MUL r20 (I4)
        cold_mul = 7  # MUL r22 (I7)
        if hot_mul in b1 and cold_mul in b1:
            assert b1.index(hot_mul) < b1.index(cold_mul)
        else:
            assert hot_mul in b1

    def test_cold_skew_flips_choice(self):
        profile = profiled(1, 9)
        func = self.schedule_with(profile)
        b1 = [i.uid for i in func.block("B1").instrs]
        hot_mul, cold_mul = 4, 7
        if hot_mul in b1 and cold_mul in b1:
            assert b1.index(cold_mul) < b1.index(hot_mul)
        else:
            assert cold_mul in b1

    def test_uniform_profile_matches_default(self):
        from ..conftest import FIGURE2
        # equal counts everywhere: ordering degenerates to the paper's
        default = parse_function(FIGURE2)
        global_schedule(default, rs6k(), ScheduleLevel.SPECULATIVE)

        profiled_func = parse_function(FIGURE2)
        profile = BranchProfile(
            {b.label: 5 for b in profiled_func.blocks}, runs=5)
        fn = make_profile_priority_fn(profile, profiled_func)
        global_schedule(profiled_func, rs6k(), ScheduleLevel.SPECULATIVE,
                        priority_fn=fn)
        assert {b.label: [i.uid for i in b.instrs]
                for b in default.blocks} == \
            {b.label: [i.uid for i in b.instrs]
             for b in profiled_func.blocks}

    def test_semantics_preserved(self):
        profile = profiled(5, 5)
        func = self.schedule_with(profile)
        for r0 in (-100, 100):
            plain = parse_function(COMPETING)
            a = execute(plain, regs={gpr(0): r0, gpr(31): 0})
            b = execute(func, regs={gpr(0): r0, gpr(31): 0})
            for reg in (gpr(21), gpr(23), gpr(29)):
                assert a.regs.get(reg, 0) == b.regs.get(reg, 0)

    def test_select_main_trace_follows_heat(self):
        from repro.sched import select_main_trace
        profile = profiled(9, 1)
        func = parse_function(COMPETING)
        members = {b.label for b in func.blocks}
        trace = select_main_trace(profile, func, "B1", members)
        assert trace[0] == "B1"
        assert "HOT" in trace and "COLD" not in trace
        assert trace[-1] == "JOIN"

    def test_select_main_trace_stops_on_cycle(self, figure2):
        from repro.sched import select_main_trace
        profile = BranchProfile({b.label: 1 for b in figure2.blocks}, runs=1)
        members = {b.label for b in figure2.blocks}
        trace = select_main_trace(profile, figure2, "CL.0", members)
        assert trace[0] == "CL.0"
        assert len(trace) == len(set(trace))  # no repeats

    def test_hot_path_faster_with_profile(self):
        # expected cycles on the hot path should not regress vs default
        profile = profiled(9, 1)
        guided = self.schedule_with(profile)
        default = self.schedule_with(None)
        hot_path = ["B1", "HOT", "JOIN"]
        g = simulate_path_iterations(guided, hot_path, rs6k())
        d = simulate_path_iterations(default, hot_path, rs6k())
        assert g <= d
