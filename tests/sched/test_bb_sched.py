"""Basic-block list scheduler tests."""

from repro.ir import Opcode, gpr, parse_function, verify_function
from repro.machine import rs6k, superscalar
from repro.sched import schedule_block, schedule_function_blocks


def test_fills_compare_branch_delay():
    # the compare should be hoisted above independent work so the branch
    # waits less
    func = parse_function("""
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
    C  cr0=r4,r5
    BT a,cr0,0x1/lt
""")
    block = func.block("a")
    cycles = schedule_block(block, rs6k())
    mnemonics = [i.opcode.mnemonic for i in block.instrs]
    assert mnemonics[0] == "C"      # compare first (D heuristic)
    assert mnemonics[-1] == "BT"    # terminator last
    assert cycles == 5              # C at 0, LIs at 1..3, BT at 4


def test_hoists_loads_for_delay_slots():
    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    L  r3=x(r10,4)
    AI r4=r3,1
""")
    block = func.block("a")
    schedule_block(block, rs6k())
    order = [i.uid for i in block.instrs]
    # both loads before both adds: each add hides in the other load's slot
    assert order == [1, 3, 2, 4]


def test_respects_dependences():
    func = parse_function("""
function f
a:
    LI r1=1
    AI r1=r1,1
    AI r1=r1,1
    AI r1=r1,1
""")
    block = func.block("a")
    schedule_block(block, rs6k())
    assert [i.uid for i in block.instrs] == [1, 2, 3, 4]


def test_empty_and_singleton_blocks():
    func = parse_function("function f\na:\n    NOP\n")
    assert schedule_block(func.block("a"), rs6k()) == 1
    from repro.ir import BasicBlock
    assert schedule_block(BasicBlock("e"), rs6k()) == 0


def test_preserves_input_order_on_ties():
    # two independent compares with equal D/CP: input order is the tie
    # break, so the post-pass cannot undo a deliberate global decision
    func = parse_function("""
function f
a:
    C cr1=r1,r2
    C cr0=r3,r4
    LI r9=0
""")
    block = func.block("a")
    # artificially reverse: the scheduler must keep the given order
    block.instrs[0], block.instrs[1] = block.instrs[1], block.instrs[0]
    schedule_block(block, rs6k())
    assert [i.uid for i in block.instrs][:2] == [2, 1]


def test_wider_machine_packs_more():
    text = """
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
    LI r4=4
"""
    narrow = parse_function(text)
    wide = parse_function(text)
    c1 = schedule_block(narrow.block("a"), rs6k())
    c4 = schedule_block(wide.block("a"), superscalar(4))
    assert c1 == 4 and c4 == 1


def test_schedule_function_blocks_returns_lengths(figure2):
    lengths = schedule_function_blocks(figure2, rs6k())
    verify_function(figure2)
    assert set(lengths) == {b.label for b in figure2.blocks}
    assert lengths["CL.0"] >= 4
    assert lengths["BL3"] == 1


def test_multicycle_instructions_respected():
    func = parse_function("""
function f
a:
    MUL r1=r2,r3
    AI  r4=r1,1
""")
    block = func.block("a")
    cycles = schedule_block(block, rs6k())
    assert cycles == 6  # MUL at 0 (5 cycles), AI at 5
