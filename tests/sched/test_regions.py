"""Region identification and the Section 6 policy predicates."""

from repro.ir import parse_function
from repro.machine import rs6k
from repro.sched import (
    MAX_REGION_BLOCKS,
    MAX_REGION_INSTRS,
    build_region_pdg,
    find_regions,
)
from repro.pdg import abstract_label


def nested():
    return parse_function("""
function nested
pre:
    LI r1=0
outerH:
    AI r1=r1,1
innerH:
    AI r2=r2,1
innerL:
    C cr0=r2,r9
    BT innerH,cr0,0x1/lt
outerL:
    C cr1=r1,r8
    BT outerH,cr1,0x1/lt
post:
    RET r1
""")


class TestFindRegions:
    def test_figure2_single_loop_region(self, figure2):
        regions = find_regions(figure2)
        kinds = [(r.kind, r.header_node) for r in regions]
        assert ("loop", "CL.0") in kinds
        assert kinds[-1][0] == "body"
        loop = regions[0]
        assert len(loop.member_labels) == 10
        assert loop.subloops == []
        assert loop.is_inner

    def test_body_region_when_entry_in_loop(self, figure2):
        regions = find_regions(figure2)
        body = regions[-1]
        # entire function is the loop: body region is empty, its entry is
        # the loop's abstract node
        assert body.member_labels == []
        assert body.header_node == abstract_label("CL.0")

    def test_nested_regions_innermost_first(self):
        func = nested()
        regions = find_regions(func)
        assert [r.header_node for r in regions] == \
            ["innerH", "outerH", "pre"]
        inner, outer, body = regions
        assert inner.is_inner and not outer.is_inner
        assert outer.is_outer
        assert sorted(outer.member_labels) == ["outerH", "outerL"]
        assert [l.header for l in outer.subloops] == ["innerH"]
        assert sorted(body.member_labels) == ["post", "pre"]

    def test_size_limits(self, figure2):
        regions = find_regions(figure2)
        loop = regions[0]
        assert loop.block_count() == 10
        assert loop.instr_count(figure2) == 20
        assert loop.is_small(figure2)
        assert MAX_REGION_BLOCKS == 64 and MAX_REGION_INSTRS == 256


class TestRegionPDGWithSubloops:
    def test_outer_region_collapses_inner(self):
        func = nested()
        regions = find_regions(func)
        outer = regions[1]
        pdg = build_region_pdg(func, rs6k(), outer)
        node = abstract_label("innerH")
        assert node in pdg.topo_labels
        assert pdg.is_abstract(node)
        assert pdg.schedulable_labels() == ["outerH", "outerL"]

    def test_barrier_summarises_loop_effects(self):
        func = nested()
        regions = find_regions(func)
        outer = regions[1]
        pdg = build_region_pdg(func, rs6k(), outer)
        barrier = pdg.block(abstract_label("innerH")).instrs[0]
        from repro.ir import gpr
        assert gpr(2) in barrier.reg_defs()   # the inner loop writes r2
        assert gpr(9) in barrier.reg_uses()   # and reads r9
        assert barrier.is_call  # conservative memory behaviour

    def test_barrier_orders_dependences(self):
        # when the inner loop touches a register the outer region also
        # uses, the barrier must pin the order on both sides
        func = parse_function("""
function nested2
pre:
    LI r1=0
outerH:
    AI r1=r1,1
innerH:
    AI r1=r1,2
innerL:
    C cr0=r1,r9
    BT innerH,cr0,0x1/lt
outerL:
    C cr1=r1,r8
    BT outerH,cr1,0x1/lt
post:
    RET r1
""")
        regions = find_regions(func)
        outer = [r for r in regions if r.header_node == "outerH"][0]
        pdg = build_region_pdg(func, rs6k(), outer)
        barrier = pdg.block(abstract_label("innerH")).instrs[0]
        outer_ai = func.block("outerH").instrs[0]
        outer_cmp = func.block("outerL").instrs[0]
        # outerH's r1 def flows into the barrier...
        assert pdg.ddg.edge(outer_ai, barrier) is not None
        # ...and outerL's compare depends on the barrier's r1 def, so the
        # compare can never be hoisted above the inner loop
        assert pdg.ddg.edge(barrier, outer_cmp) is not None

    def test_no_spurious_barrier_edges(self):
        # disjoint registers: the barrier stays disconnected
        func = nested()
        regions = find_regions(func)
        outer = regions[1]
        pdg = build_region_pdg(func, rs6k(), outer)
        barrier = pdg.block(abstract_label("innerH")).instrs[0]
        assert pdg.ddg.succs(barrier) == []
        assert pdg.ddg.preds(barrier) == []

    def test_body_region_of_pure_loop_function(self, figure2):
        regions = find_regions(figure2)
        body = regions[-1]
        pdg = build_region_pdg(figure2, rs6k(), body)
        assert pdg.schedulable_labels() == []
