"""Dependence-state (ready list) bookkeeping tests."""

from repro.ir import parse_function
from repro.machine import rs6k
from repro.pdg import build_block_ddg
from repro.sched import DependenceState


def make_state():
    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    C  cr0=r2,r3
    BT a,cr0,0x1/lt
""")
    block = func.block("a")
    machine = rs6k()
    ddg = build_block_ddg(block, machine)
    state = DependenceState(ddg, machine)
    state.begin_block()
    return block, state


def test_initially_only_roots_ready():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    assert state.deps_satisfied(load)
    assert not state.deps_satisfied(ai)
    assert not state.deps_satisfied(cmp_i)


def test_issue_unlocks_successors_with_weights():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(load, 0)
    assert state.deps_satisfied(ai)
    assert state.earliest_start(ai) == 2  # exec 1 + load delay 1
    state.mark_issued(ai, 2)
    assert state.earliest_start(cmp_i) == 3
    state.mark_issued(cmp_i, 3)
    assert state.earliest_start(bt) == 7  # 3 + exec 1 + compare delay 3


def test_prefulfilled_is_timing_neutral():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_prefulfilled(load)
    assert state.deps_satisfied(ai)
    assert state.earliest_start(ai) == 0


def test_begin_block_clears_timing_but_not_fulfilment():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(load, 5)
    state.begin_block()
    assert state.is_fulfilled(load)
    assert state.earliest_start(ai) == 0


def test_carry_shifts_previous_starts():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(cmp_i, 4)
    # previous pass was 5 cycles long: cmp looks issued at cycle -1, so
    # the branch still owes 3 of its 4 separation cycles
    state.begin_block(carry_cycles=5)
    state.mark_prefulfilled(load)
    state.mark_prefulfilled(ai)
    assert state.earliest_start(bt) == 3


def test_carry_expires_after_one_block():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(cmp_i, 4)
    state.begin_block(carry_cycles=5)
    state.begin_block(carry_cycles=1)
    assert state.earliest_start(bt) == 0  # two blocks later: neutral


# -- DDG-version cache invalidation ------------------------------------------

def test_version_bump_drops_derived_caches():
    from repro.pdg.data_deps import DepKind

    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    # warm the caches: bt is blocked only by cmp_i (and transitively)
    state.mark_issued(load, 0)
    state.mark_issued(ai, 2)
    assert not state.deps_satisfied(bt)
    assert state.invalidations == 0
    # a mid-region mutation (what renaming/duplication do) bumps version
    before = state.ddg.version
    state.ddg.add_edge(load, bt, DepKind.ANTI, 0)
    assert state.ddg.version > before
    # the next query resyncs: caches dropped exactly once, fulfilment kept
    state.mark_issued(cmp_i, 3)
    assert state.deps_satisfied(bt)          # load already fulfilled
    assert state.earliest_start(bt) == 7     # flow edge still dominates
    assert state.invalidations == 1


def test_new_edge_visible_after_invalidation():
    from repro.ir import parse_function
    from repro.pdg.data_deps import DepKind

    func = parse_function("""
function g
a:
    LI r1=1
    LI r2=2
""")
    block = func.block("a")
    machine = rs6k()
    ddg = build_block_ddg(block, machine)
    one, two = block.instrs
    state = DependenceState(ddg, machine)
    state.begin_block()
    # independent at first: both are ready roots
    assert state.deps_satisfied(one) and state.deps_satisfied(two)
    ddg.add_edge(one, two, DepKind.FLOW, 0)
    # version resync makes the new constraint visible immediately
    assert not state.deps_satisfied(two)
    state.mark_issued(one, 0)
    assert state.deps_satisfied(two)
    assert state.earliest_start(two) == 1    # exec time of LI
    assert state.invalidations == 1


def test_mutation_without_version_bump_serves_stale_answers():
    """The documented failure mode: a graph mutation that bypasses
    ``add_edge``/``remove_edge`` (and so never bumps ``version``) leaves
    the incremental caches stale -- queries keep answering from the old
    edge set until something legitimate bumps the version."""
    from repro.pdg.data_deps import DepEdge, DepKind

    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    assert state.deps_satisfied(load)
    assert not state.deps_satisfied(ai)      # caches warmed
    # sneak an edge in behind the graph's back: no version bump
    rogue = DepEdge(cmp_i, load, DepKind.ANTI, 0, None)
    state.ddg._preds[id(load)].append(rogue)
    state.ddg._succs[id(cmp_i)].append(rogue)
    assert state.deps_satisfied(load)        # stale: rogue edge invisible
    # any honest mutation resyncs and the rogue edge takes effect
    state.ddg.add_edge(ai, bt, DepKind.ANTI, 0)
    assert not state.deps_satisfied(load)
    assert state.invalidations == 1
