"""Dependence-state (ready list) bookkeeping tests."""

from repro.ir import parse_function
from repro.machine import rs6k
from repro.pdg import build_block_ddg
from repro.sched import DependenceState


def make_state():
    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    C  cr0=r2,r3
    BT a,cr0,0x1/lt
""")
    block = func.block("a")
    machine = rs6k()
    ddg = build_block_ddg(block, machine)
    state = DependenceState(ddg, machine)
    state.begin_block()
    return block, state


def test_initially_only_roots_ready():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    assert state.deps_satisfied(load)
    assert not state.deps_satisfied(ai)
    assert not state.deps_satisfied(cmp_i)


def test_issue_unlocks_successors_with_weights():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(load, 0)
    assert state.deps_satisfied(ai)
    assert state.earliest_start(ai) == 2  # exec 1 + load delay 1
    state.mark_issued(ai, 2)
    assert state.earliest_start(cmp_i) == 3
    state.mark_issued(cmp_i, 3)
    assert state.earliest_start(bt) == 7  # 3 + exec 1 + compare delay 3


def test_prefulfilled_is_timing_neutral():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_prefulfilled(load)
    assert state.deps_satisfied(ai)
    assert state.earliest_start(ai) == 0


def test_begin_block_clears_timing_but_not_fulfilment():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(load, 5)
    state.begin_block()
    assert state.is_fulfilled(load)
    assert state.earliest_start(ai) == 0


def test_carry_shifts_previous_starts():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(cmp_i, 4)
    # previous pass was 5 cycles long: cmp looks issued at cycle -1, so
    # the branch still owes 3 of its 4 separation cycles
    state.begin_block(carry_cycles=5)
    state.mark_prefulfilled(load)
    state.mark_prefulfilled(ai)
    assert state.earliest_start(bt) == 3


def test_carry_expires_after_one_block():
    block, state = make_state()
    load, ai, cmp_i, bt = block.instrs
    state.mark_issued(cmp_i, 4)
    state.begin_block(carry_cycles=5)
    state.begin_block(carry_cycles=1)
    assert state.earliest_start(bt) == 0  # two blocks later: neutral
