"""The event-driven scheduler must be indistinguishable from the seed scan.

PR contract for the ready-queue rewrite: the event-driven inner loop
(:mod:`repro.sched.ready`'s ``ReadyQueue`` + the bitset liveness tracker)
and the preserved scan-driven baseline
(:mod:`repro.sched.reference`) produce **byte-identical** output at every
observable level -- assembly, recorded motions, and the full decision
trace (PriorityDecision runner-ups, SpeculationRejected, CycleAdvance
ready counts, UnitOccupancy) -- across machines, scheduling levels, and
the optional duplication / rename-on-demand paths.  Anything else means
the queue evaluated a candidate the scan would not have (or vice versa).
"""

import pytest

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.obs import CollectingTracer, MetricsCollector
from repro.sched.candidates import ScheduleLevel
from repro.sched.reference import reference_scheduler, scan_scheduler
from repro.verify.fuzz import derive_seed
from repro.verify.generator import generate_program
from repro.xform.pipeline import PipelineConfig

MINMAX = (
    "int minmax(int a[], int n, int out[]) {\n"
    "    int min = a[0]; int max = min; int i = 1;\n"
    "    while (i < n) {\n"
    "        int u = a[i]; int v = a[i+1];\n"
    "        if (u > v) { if (u > max) max = u; if (v < min) min = v; }\n"
    "        else       { if (v > max) max = v; if (u < min) min = u; }\n"
    "        i = i + 2;\n"
    "    }\n"
    "    out[0] = min; out[1] = max; return 0;\n"
    "}\n"
)

#: fuzz-corpus seeds; index 13 is the perf suite's largest program
CORPUS_INDICES = (0, 3, 7, 13)


def _compile(source, level, machine, **kwargs):
    """(assembly, motions, scrubbed trace events) for one arm."""
    trace = CollectingTracer()
    config = PipelineConfig(level=level, trace=trace,
                            metrics=MetricsCollector(), **kwargs)
    result = compile_c(source, machine=CONFIGS[machine](), level=level,
                       config=config)
    assembly = "\n\n".join(unit.assembly() for unit in result)
    motions = [list(unit.report.motions) for unit in result]

    def scrub(event):
        d = event.to_dict()
        if "elapsed_ms" in d:
            d["elapsed_ms"] = None
        return d

    return assembly, motions, [scrub(e) for e in trace.events]


def assert_arms_agree(source, level, machine, **kwargs):
    """Both engines produce the same output -- or fail the same way.

    A handful of corpus programs hit the (pre-existing, seed-identical)
    scheduler stall guard on narrow machines with duplication enabled;
    equivalence there means both arms raise the *same* stall."""
    def arm():
        try:
            return _compile(source, level, machine, **kwargs)
        except RuntimeError as exc:
            return ("raised", str(exc))

    event_arm = arm()
    with reference_scheduler():
        scan_arm = arm()
    if event_arm[0] == "raised" or scan_arm[0] == "raised":
        assert event_arm == scan_arm, "only one arm stalled"
        return
    assert event_arm[0] == scan_arm[0], "assembly diverged"
    assert event_arm[1] == scan_arm[1], "motions diverged"
    assert event_arm[2] == scan_arm[2], "decision traces diverged"


@pytest.mark.parametrize("machine", sorted(CONFIGS))
@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_minmax_identical_everywhere(level, machine):
    assert_arms_agree(MINMAX, level, machine)


@pytest.mark.parametrize("kwargs", [{"allow_duplication": True},
                                    {"rename_ahead": True}],
                         ids=["duplication", "rename-ahead"])
def test_optional_paths_identical(kwargs):
    assert_arms_agree(MINMAX, ScheduleLevel.SPECULATIVE, "rs6k", **kwargs)


@pytest.mark.parametrize("index", CORPUS_INDICES)
@pytest.mark.parametrize("machine", ["rs6k", "vliw8"])
def test_fuzz_corpus_identical(index, machine):
    program = generate_program(derive_seed(1991, index))
    assert_arms_agree(program.source, ScheduleLevel.SPECULATIVE, machine)


@pytest.mark.slow
@pytest.mark.parametrize("index", range(30))
def test_fuzz_corpus_identical_wide_sweep(index):
    program = generate_program(derive_seed(2024, index))
    for machine in sorted(CONFIGS):
        assert_arms_agree(program.source, ScheduleLevel.SPECULATIVE,
                          machine, allow_duplication=True)


def test_scan_scheduler_restores_engine():
    from repro.sched import global_sched

    before = global_sched._ENGINE
    with scan_scheduler():
        assert global_sched._ENGINE == "scan"
    assert global_sched._ENGINE == before


def test_custom_priority_fn_uses_scan_path():
    """A dynamic priority function (here from a branch profile) cannot be
    precomputed at collection time, so ``schedule_region`` must fall back
    to the scan pass -- and produce the same schedule the forced scan
    engine does."""
    from repro.sched.profiling import BranchProfile

    profile = BranchProfile({"LH.1": 10, "L.4": 9, "L.6": 1}, runs=1)

    def build():
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                profile=profile)
        result = compile_c(MINMAX, machine=CONFIGS["rs6k"](),
                           level=ScheduleLevel.SPECULATIVE, config=config)
        return "\n\n".join(unit.assembly() for unit in result)

    default_engine = build()
    with scan_scheduler():
        forced_scan = build()
    assert default_engine == forced_scan
