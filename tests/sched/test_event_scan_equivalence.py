"""The event-driven scheduler must be indistinguishable from the seed scan.

PR contract for the ready-queue rewrite: the event-driven inner loop
(:mod:`repro.sched.soa`'s ``DenseReadyQueue`` over interned int state +
the bitset/bitmask liveness tracker) and the preserved scan-driven baseline
(:mod:`repro.sched.reference`) produce **byte-identical** output at every
observable level -- assembly, recorded motions, and the full decision
trace (PriorityDecision runner-ups, SpeculationRejected, CycleAdvance
ready counts, UnitOccupancy) -- across machines, scheduling levels, and
the optional duplication / rename-on-demand paths.  Anything else means
the queue evaluated a candidate the scan would not have (or vice versa).
"""

import pytest

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.obs import CollectingTracer, MetricsCollector
from repro.sched.candidates import ScheduleLevel
from repro.sched.reference import reference_scheduler, scan_scheduler
from repro.verify.fuzz import derive_seed
from repro.verify.generator import generate_program
from repro.xform.pipeline import PipelineConfig

MINMAX = (
    "int minmax(int a[], int n, int out[]) {\n"
    "    int min = a[0]; int max = min; int i = 1;\n"
    "    while (i < n) {\n"
    "        int u = a[i]; int v = a[i+1];\n"
    "        if (u > v) { if (u > max) max = u; if (v < min) min = v; }\n"
    "        else       { if (v > max) max = v; if (u < min) min = u; }\n"
    "        i = i + 2;\n"
    "    }\n"
    "    out[0] = min; out[1] = max; return 0;\n"
    "}\n"
)

#: fuzz-corpus seeds; index 13 is the perf suite's largest program
CORPUS_INDICES = (0, 3, 7, 13)


def _compile(source, level, machine, **kwargs):
    """(assembly, motions, scrubbed trace events) for one arm."""
    trace = CollectingTracer()
    config = PipelineConfig(level=level, trace=trace,
                            metrics=MetricsCollector(), **kwargs)
    result = compile_c(source, machine=CONFIGS[machine](), level=level,
                       config=config)
    assembly = "\n\n".join(unit.assembly() for unit in result)
    motions = [list(unit.report.motions) for unit in result]

    def scrub(event):
        d = event.to_dict()
        if "elapsed_ms" in d:
            d["elapsed_ms"] = None
        return d

    return assembly, motions, [scrub(e) for e in trace.events]


def assert_arms_agree(source, level, machine, **kwargs):
    """Both engines produce the same output -- or fail the same way.

    A handful of corpus programs hit the (pre-existing, seed-identical)
    scheduler stall guard on narrow machines with duplication enabled;
    equivalence there means both arms raise the *same* stall."""
    def arm():
        try:
            return _compile(source, level, machine, **kwargs)
        except RuntimeError as exc:
            return ("raised", str(exc))

    event_arm = arm()
    with reference_scheduler():
        scan_arm = arm()
    if event_arm[0] == "raised" or scan_arm[0] == "raised":
        assert event_arm == scan_arm, "only one arm stalled"
        return
    assert event_arm[0] == scan_arm[0], "assembly diverged"
    assert event_arm[1] == scan_arm[1], "motions diverged"
    assert event_arm[2] == scan_arm[2], "decision traces diverged"


@pytest.mark.parametrize("machine", sorted(CONFIGS))
@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_minmax_identical_everywhere(level, machine):
    assert_arms_agree(MINMAX, level, machine)


@pytest.mark.parametrize("kwargs", [{"allow_duplication": True},
                                    {"rename_ahead": True}],
                         ids=["duplication", "rename-ahead"])
def test_optional_paths_identical(kwargs):
    assert_arms_agree(MINMAX, ScheduleLevel.SPECULATIVE, "rs6k", **kwargs)


@pytest.mark.parametrize("index", CORPUS_INDICES)
@pytest.mark.parametrize("machine", ["rs6k", "vliw8"])
def test_fuzz_corpus_identical(index, machine):
    program = generate_program(derive_seed(1991, index))
    assert_arms_agree(program.source, ScheduleLevel.SPECULATIVE, machine)


@pytest.mark.slow
@pytest.mark.parametrize("index", range(30))
def test_fuzz_corpus_identical_wide_sweep(index):
    program = generate_program(derive_seed(2024, index))
    for machine in sorted(CONFIGS):
        assert_arms_agree(program.source, ScheduleLevel.SPECULATIVE,
                          machine, allow_duplication=True)


def test_scan_scheduler_restores_engine():
    from repro.sched import global_sched

    before = global_sched._ENGINE
    with scan_scheduler():
        assert global_sched._ENGINE == "scan"
    assert global_sched._ENGINE == before


def test_profile_priority_fn_runs_on_soa_engine():
    """The branch-profile priority function advertises static all-int
    per-block-pass keys (:class:`repro.sched.heuristics.StaticBlockPriority`),
    so the SoA engine packs them and keeps the dense path -- byte-identical
    to the forced scan engine, traces included."""
    from repro.sched.profiling import BranchProfile

    profile = BranchProfile({"LH.1": 10, "L.4": 9, "L.6": 1}, runs=1)

    def build():
        trace = CollectingTracer()
        metrics = MetricsCollector()
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                profile=profile, trace=trace,
                                metrics=metrics)
        result = compile_c(MINMAX, machine=CONFIGS["rs6k"](),
                           level=ScheduleLevel.SPECULATIVE, config=config)
        assembly = "\n\n".join(unit.assembly() for unit in result)
        events = [{**e.to_dict(), "elapsed_ms": None}
                  for e in trace.events]
        return assembly, events, metrics

    default_asm, default_trace, metrics = build()
    # the profile fn really ran on the dense engine, not a silent fallback
    assert metrics.counters.get("sched.soa.packed_keys", 0) > 0
    with scan_scheduler():
        scan_asm, scan_trace, scan_metrics = build()
    assert scan_metrics.counters.get("sched.soa.packed_keys", 0) == 0
    assert default_asm == scan_asm
    assert default_trace == scan_trace


def test_dynamic_priority_fn_falls_back_to_scan():
    """A plain callable cannot promise static per-block keys, so
    ``schedule_region`` must take the scan pass -- and still produce the
    schedule the forced scan engine does."""
    from repro.ir.parser import parse_function
    from repro.ir.printer import format_function
    from repro.sched.driver import global_schedule

    def dynamic_fn(ins, *, useful, priorities):
        d, cp = priorities.get(id(ins), (0, 0))
        return (0 if useful else 1, -d, -cp, ins.uid)

    source = compile_c(MINMAX, machine=CONFIGS["rs6k"](),
                       level=ScheduleLevel.NONE)["minmax"]
    text = format_function(source.func)

    def build():
        func = parse_function(text)
        metrics = MetricsCollector()
        global_schedule(func, CONFIGS["rs6k"](), ScheduleLevel.SPECULATIVE,
                        priority_fn=dynamic_fn, metrics=metrics)
        return format_function(func), metrics

    default_out, metrics = build()
    assert metrics.counters.get("sched.soa.packed_keys", 0) == 0
    with scan_scheduler():
        forced_out, _ = build()
    assert default_out == forced_out
