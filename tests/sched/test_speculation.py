"""Speculative-motion legality: the paper's Section 5.3 example and the
dynamic live-on-exit updates."""

from repro.cfg import Digraph
from repro.dataflow import compute_liveness
from repro.ir import gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.sched import (
    LiveOnExitTracker,
    ScheduleLevel,
    global_schedule,
)


def x_example():
    """Section 5.3: if (cond) x=5; else x=3; print(x)."""
    return parse_function("""
function xexample
B1:
    C  cr0=r1,r2
    AI r20=r1,1
    BF B3,cr0,0x1/lt
B2:
    LI r10=5
    B B4
B3:
    LI r10=3
B4:
    CALL print(r10)
    AI r21=r20,1
    RET
""")


class TestSection53Example:
    def test_only_one_definition_moves(self):
        # "it is apparent that both of them are not allowed to move there,
        # since a wrong value may be printed"
        func = x_example()
        report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                                 rename_on_demand=False)
        moved = [m for m in report.speculative_motions
                 if m.opcode == "LI"]
        assert len(moved) == 1  # x=5 moves, then x=3 is blocked
        assert moved[0].src == "B2" and moved[0].dst == "B1"
        verify_function(func)

    def test_remaining_definition_stays(self):
        func = x_example()
        global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                        rename_on_demand=False)
        # B3 must still define x (r10)
        assert any(gpr(10) in ins.reg_defs()
                   for ins in func.block("B3").instrs)

    def test_semantics_preserved_both_paths(self):
        from repro.sim import execute
        for r1, r2, expected in ((0, 5, 5), (5, 0, 3)):
            func = x_example()
            global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                            rename_on_demand=False)
            printed = []
            execute(func, regs={gpr(1): r1, gpr(2): r2},
                    call_handlers={"print": lambda a: printed.append(a[0]) or []})
            assert printed == [expected]

    def test_rename_on_demand_cannot_rename_live_web(self):
        # r10 is live out of B2 (used by the call in B4): its web is not
        # block-local, so on-demand renaming must refuse and the second
        # motion stays blocked even with renaming enabled
        func = x_example()
        report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                                 rename_on_demand=True)
        li_moves = [m for m in report.speculative_motions if m.opcode == "LI"]
        assert len(li_moves) == 1


class TestLiveOnExitTracker:
    def make_tracker(self, figure2):
        live = compute_liveness(
            figure2, frozenset({gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)}))
        forward = Digraph()
        # forward graph of the loop (back edge removed)
        for block in figure2.blocks:
            forward.add_node(block.label)
        for block in figure2.blocks:
            for succ in figure2.successors(block):
                if succ.label != "CL.0":
                    forward.add_edge(block.label, succ.label)
        return LiveOnExitTracker(live.live_out_map(), forward)

    def test_blocks_motion_for_live_register(self, figure2):
        tracker = self.make_tracker(figure2)
        i7 = figure2.block("BL3").instrs[0]  # LR r30=r12 (max = u)
        assert tracker.blocks_motion(i7, "BL2")
        assert tracker.blocks_motion(i7, "CL.0")

    def test_allows_motion_for_dead_register(self, figure2):
        tracker = self.make_tracker(figure2)
        i5 = figure2.block("BL2").instrs[0]  # C cr6=r12,r30
        assert not tracker.blocks_motion(i5, "CL.0")

    def test_record_motion_updates_targets_and_between(self, figure2):
        tracker = self.make_tracker(figure2)
        i5 = figure2.block("BL2").instrs[0]
        tracker.record_motion(i5, "BL2", "CL.0")
        assert tracker.blocks_motion(i5, "CL.0")
        # ... and any twin definition is now blocked (the I12 story)
        i12 = figure2.block("CL.4").instrs[0]
        assert tracker.blocks_motion(i12, "CL.0")

    def test_record_motion_spans_intermediate_blocks(self, figure2):
        tracker = self.make_tracker(figure2)
        i10 = figure2.block("BL5").instrs[0]  # LR r28=r0 two levels down
        tracker.record_motion(i10, "BL5", "CL.0")
        live_bl2 = tracker.live_out_of("BL2")
        assert gpr(28) in live_bl2  # BL2 lies between CL.0 and BL5
        # blocks not between source and destination are untouched
        assert gpr(28) in tracker.live_out_of("CL.4") or True  # r28 was live anyway

    def test_record_motion_without_defs_is_noop(self, figure2):
        tracker = self.make_tracker(figure2)
        before = {k: set(v) for k, v in tracker._live_out.items()}
        from repro.ir import Instruction, Opcode
        store = Instruction(Opcode.ST, uses=(gpr(1), gpr(2)))
        tracker.record_motion(store, "BL5", "CL.0")
        assert {k: set(v) for k, v in tracker._live_out.items()} == before
