"""Property tests for the bitset live-on-exit tracker (Section 5.3).

The optimized :class:`LiveOnExitTracker` answers "which blocks lie on a
forward path from the motion target to the motion source" from interned
per-region reachability bitsets; the preserved
:class:`LiveOnExitTrackerReference` re-walks the graph per motion.  On
randomized DAG regions and randomized motion sequences the two must
maintain *identical* live-on-exit sets -- and both must match a naive
from-scratch recomputation of the paper's rule.  A second property pins
the ready queue's targeted veto invalidation: after any motion, the set
of heap residents flagged for re-judgment is exactly the set whose
definitions joined a live-out set the candidate is judged against.
"""

import random

from repro.cfg import Digraph
from repro.ir import gpr
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.sched.reference import LiveOnExitTrackerReference
from repro.sched.speculation import LiveOnExitTracker


def random_dag(rng, n_blocks):
    """A rooted forward DAG over labels B0..Bn-1 (edges i -> j, i < j)."""
    graph = Digraph()
    labels = [f"B{i}" for i in range(n_blocks)]
    for label in labels:
        graph.add_node(label)
    for j in range(1, n_blocks):
        # at least one in-edge keeps every block reachable from B0
        preds = rng.sample(range(j), k=min(j, 1 + rng.randrange(2)))
        for i in preds:
            graph.add_edge(labels[i], labels[j])
    return graph, labels


def defining(regs):
    """A minimal real instruction defining ``regs`` (LI picked arbitrarily;
    record_motion only reads ``reg_defs``)."""
    return Instruction(Opcode.LI, defs=tuple(regs), imm=0)


def naive_between(graph, src, dst):
    """The paper's rule, recomputed from scratch: blocks on a forward
    path dst -> ... -> src, exclusive of src, inclusive of dst."""
    downstream = graph.reachable_from(dst)
    upstream = graph.reversed().reachable_from(src)
    between = (downstream & upstream) - {src}
    between.add(dst)
    return between


def test_trackers_agree_on_random_motion_sequences():
    rng = random.Random(0xC0FFEE)
    for trial in range(40):
        n = 2 + rng.randrange(10)
        graph, labels = random_dag(rng, n)
        base = {label: {gpr(rng.randrange(8))
                        for _ in range(rng.randrange(3))}
                for label in labels}
        fast = LiveOnExitTracker({k: set(v) for k, v in base.items()}, graph)
        slow = LiveOnExitTrackerReference(
            {k: set(v) for k, v in base.items()}, graph)
        shadow = {k: set(v) for k, v in base.items()}

        for _ in range(15):
            src, dst = rng.sample(labels, 2)
            # motions go upward: dst must reach src in the forward graph
            if src not in graph.reachable_from(dst):
                src, dst = dst, src
                if src not in graph.reachable_from(dst):
                    continue
            ins = defining([gpr(rng.randrange(8))
                            for _ in range(1 + rng.randrange(2))])
            fast.record_motion(ins, src, dst)
            slow.record_motion(ins, src, dst)
            for label in naive_between(graph, src, dst):
                shadow.setdefault(label, set()).update(ins.reg_defs())

            for label in labels:
                assert fast.live_out_of(label) == slow.live_out_of(label), (
                    f"trial {trial}: trackers diverged at {label}")
                assert fast.live_out_of(label) == shadow.get(label, set()), (
                    f"trial {trial}: bitset tracker diverged from naive "
                    f"recomputation at {label}")


def test_unknown_labels_fall_back_to_traversal():
    """Labels outside the interned region graph (duplication copies land
    in blocks the forward graph never saw) take the traversal fallback
    and still agree with the reference."""
    graph = Digraph()
    for label in ("B0", "B1"):
        graph.add_node(label)
    graph.add_edge("B0", "B1")
    fast = LiveOnExitTracker({}, graph)
    slow = LiveOnExitTrackerReference({}, graph)
    ins = defining([gpr(1)])
    fast.record_motion(ins, "B1", "B0")       # prime the bitsets
    slow.record_motion(ins, "B1", "B0")
    outside = defining([gpr(2)])
    fast.record_motion(outside, "ELSEWHERE", "ELSEWHERE2")
    slow.record_motion(outside, "ELSEWHERE", "ELSEWHERE2")
    for label in ("B0", "B1", "ELSEWHERE", "ELSEWHERE2"):
        assert fast.live_out_of(label) == slow.live_out_of(label)


def test_blocks_motion_follows_dynamic_updates():
    """Section 5.3's x=5/x=3 shape on the trackers directly: after one
    sibling definition moves up, the other is vetoed -- identically on
    both implementations."""
    graph = Digraph()
    for label in ("A", "T", "E"):
        graph.add_node(label)
    graph.add_edge("A", "T")
    graph.add_edge("A", "E")
    for tracker in (LiveOnExitTracker({}, graph),
                    LiveOnExitTrackerReference({}, graph)):
        x = gpr(5)
        first, second = defining([x]), defining([x])
        assert not tracker.blocks_motion(first, "A")
        tracker.record_motion(first, "T", "A")
        assert tracker.blocks_motion(second, "A")
        assert tracker.blocking_regs(second, "A") == (x,)


def test_targeted_invalidation_flags_exactly_the_affected_residents():
    """The ready queue's reg -> candidate index re-flags a speculative
    heap resident iff a motion made one of its definitions live; an
    unrelated motion must not disturb it."""
    from repro.machine.configs import CONFIGS
    from repro.pdg.data_deps import build_block_ddg
    from repro.ir.basic_block import BasicBlock
    from repro.obs.metrics import MetricsCollector
    from repro.sched.candidates import Candidate
    from repro.sched.soa import _READY, DenseDependenceState, DenseReadyQueue

    machine = CONFIGS["rs6k"]()
    home = BasicBlock("H", [defining([gpr(1)]), defining([gpr(2)])])
    spec_a, spec_b = home.instrs
    ddg = build_block_ddg(home, machine)
    state = DenseDependenceState(ddg, machine)
    state.begin_block()
    metrics = MetricsCollector()
    queue = DenseReadyQueue(
        state,
        [Candidate(spec_a, "H", useful=False),
         Candidate(spec_b, "H", useful=False)],
        [0, 1],
        None, metrics)
    seq_a, seq_b = 0, 1
    try:
        queue.begin_cycle(0)
        queue.scan_start()
        # both speculative candidates need judgment; promote both
        while (seq := queue.next_evaluation()) >= 0:
            queue.promote(seq)
        assert queue.ready_count == 2
        queue.note_liveness_grown([gpr(1)])    # only spec_a's def
        assert queue._flagged[seq_a] and not queue._flagged[seq_b]
        queue.scan_start()
        flagged = queue.next_evaluation()
        assert flagged == seq_a                # re-judged...
        queue.promote(flagged)
        assert queue.next_evaluation() < 0     # ...and nothing else
        assert queue.status[seq_b] == _READY
        assert metrics.counters["sched.queue.liveness_flags"] == 1
    finally:
        queue.detach()
