"""Global scheduler tests: exact reproduction of Figures 5 and 6."""

import pytest

from repro.ir import Opcode, cr, gpr, verify_function
from repro.machine import rs6k
from repro.sched import ScheduleLevel, global_schedule

from ..conftest import block_uids

#: Figure 5 of the paper: useful-only scheduling of the minmax loop.
FIGURE5_SHAPE = {
    "CL.0": [1, 2, 18, 3, 19, 4],
    "BL2": [5, 8, 6],
    "BL3": [7],
    "CL.6": [9],
    "BL5": [10, 11],
    "CL.4": [12, 15, 13],
    "BL7": [14],
    "CL.11": [16],
    "BL9": [17],
    "CL.9": [20],
}

#: Figure 6: useful + 1-branch speculative scheduling.
FIGURE6_SHAPE = {
    "CL.0": [1, 2, 18, 3, 19, 5, 12, 4],
    "BL2": [8, 6],
    "BL3": [7],
    "CL.6": [9],
    "BL5": [10, 11],
    "CL.4": [15, 13],
    "BL7": [14],
    "CL.11": [16],
    "BL9": [17],
    "CL.9": [20],
}


class TestFigure5:
    def test_exact_schedule(self, figure2):
        report = global_schedule(figure2, rs6k(), ScheduleLevel.USEFUL)
        verify_function(figure2)
        assert block_uids(figure2) == FIGURE5_SHAPE

    def test_motions_match_paper(self, figure2):
        # "two instructions of BL10 (I18 and I19) were moved into BL1 ...
        # I8 was moved from BL4 to BL2, and I15 was moved from BL8 to BL6"
        report = global_schedule(figure2, rs6k(), ScheduleLevel.USEFUL)
        moves = {(m.uid, m.src, m.dst) for m in report.motions}
        assert moves == {
            (18, "CL.9", "CL.0"),
            (19, "CL.9", "CL.0"),
            (8, "CL.6", "BL2"),
            (15, "CL.11", "CL.4"),
        }
        assert all(not m.speculative for m in report.motions)


class TestFigure6:
    def test_exact_schedule(self, figure2):
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        verify_function(figure2)
        assert block_uids(figure2) == FIGURE6_SHAPE

    def test_speculative_motions(self, figure2):
        # "two additional instructions (I5 and I12) were moved
        # speculatively to BL1"
        report = global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        spec = {(m.uid, m.src, m.dst) for m in report.speculative_motions}
        assert spec == {(5, "BL2", "CL.0"), (12, "CL.4", "CL.0")}

    def test_i12_condition_register_renamed(self, figure2):
        # Figure 6 renames I12's cr6 (the paper uses cr5) so it can sit in
        # BL1 next to I5's cr6; I13 must read the renamed register
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        by_uid = {ins.uid: ins for ins in figure2.instructions()}
        i5, i12, i6, i13 = by_uid[5], by_uid[12], by_uid[6], by_uid[13]
        assert i5.defs[0] == cr(6)          # I5 keeps its register
        assert i12.defs[0] != cr(6)         # I12 was renamed
        assert i13.uses[0] == i12.defs[0]   # its branch follows
        assert i6.uses[0] == cr(6)

    def test_i8_not_renamed_or_hoisted(self, figure2):
        # I8's cr7 collides with BL1's own live compare->branch pair
        # (anti-dependence on I4), so it may move only usefully to BL2 --
        # exactly what Figure 6 shows
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        by_uid = {ins.uid: ins for ins in figure2.instructions()}
        assert by_uid[8].defs[0] == cr(7)
        assert by_uid[8] in figure2.block("BL2").instrs

    def test_rename_on_demand_off_blocks_i12(self, figure2):
        report = global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE,
                                 rename_on_demand=False)
        spec = {m.uid for m in report.speculative_motions}
        assert 5 in spec and 12 not in spec


class TestLevelNone:
    def test_no_motion(self, figure2):
        before = block_uids(figure2)
        report = global_schedule(figure2, rs6k(), ScheduleLevel.NONE)
        assert block_uids(figure2) == before
        assert report.motions == []


class TestInvariants:
    @pytest.mark.parametrize("level",
                             [ScheduleLevel.USEFUL, ScheduleLevel.SPECULATIVE])
    def test_branches_never_move(self, figure2, level):
        branch_homes = {
            ins.uid: b.label for b in figure2.blocks for ins in b.instrs
            if ins.is_branch
        }
        global_schedule(figure2, rs6k(), level)
        for block in figure2.blocks:
            for ins in block.instrs:
                if ins.is_branch:
                    assert branch_homes[ins.uid] == block.label

    @pytest.mark.parametrize("level",
                             [ScheduleLevel.USEFUL, ScheduleLevel.SPECULATIVE])
    def test_no_instruction_lost_or_duplicated(self, figure2, level):
        before = sorted(ins.uid for ins in figure2.instructions())
        global_schedule(figure2, rs6k(), level)
        after = sorted(ins.uid for ins in figure2.instructions())
        assert before == after

    @pytest.mark.parametrize("level",
                             [ScheduleLevel.USEFUL, ScheduleLevel.SPECULATIVE])
    def test_terminators_stay_terminal(self, figure2, level):
        global_schedule(figure2, rs6k(), level)
        verify_function(figure2)

    def test_motions_only_upward(self, figure2):
        # destination must dominate the source in the original CFG
        from repro.cfg import ControlFlowGraph, ENTRY, dominator_tree
        dom = dominator_tree(ControlFlowGraph(figure2).graph, ENTRY)
        report = global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        for m in report.motions:
            assert dom.dominates(m.dst, m.src)

    def test_block_may_be_fully_drained(self):
        # speculative motion in a branch shadow may empty a block
        # entirely; the empty block then just falls through
        from repro.ir import parse_function
        from repro.sim import execute
        func = parse_function("""
function drain
a:
    LI r1=1
    C  cr0=r1,r8
    BT c,cr0,0x1/lt
b:
    AI r2=r1,1
    AI r4=r2,1
c:
    RET r1
""")
        report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                                 live_at_exit=frozenset({gpr(1)}))
        verify_function(func)
        assert func.block("b").instrs == []  # fully drained
        assert {m.uid for m in report.speculative_motions} == {4, 5}
        for r8 in (0, 9):
            assert execute(func, regs={gpr(8): r8}).return_value == 1

    def test_unreachable_block_tolerated(self, figure2):
        # an unreachable block must not break region construction
        figure2.add_block("EMPTY", after=figure2.block("BL5"))
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        verify_function(figure2)

    def test_stores_never_speculative(self):
        from repro.ir import parse_function
        func = parse_function("""
function storespec
a:
    C cr0=r1,r2
    BF join,cr0,0x1/lt
b:
    ST r3=>x(r10,0)
    LI r4=1
join:
    AI r5=r5,1
""")
        report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE)
        store = func.block("b").instrs
        assert any(ins.opcode is Opcode.ST for ins in func.block("b").instrs)
        for m in report.speculative_motions:
            assert m.opcode != "ST"
