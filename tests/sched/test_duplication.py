"""Definition 6 duplication tests (the paper's future-work extension)."""

import pytest

from repro import ScheduleLevel, compile_c, rs6k
from repro.ir import gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.pdg import RegionPDG
from repro.sched import global_schedule
from repro.sched.candidates import duplication_source
from repro.sim import execute
from repro.xform import PipelineConfig

#: diamond with a join whose work can hoist into both arms
DIAMOND = """
function diamond
top:
    C  cr0=r1,r2
    BF else_arm,cr0,0x1/lt
then_arm:
    AI r10=r1,1
    B  join
else_arm:
    AI r10=r2,7
join:
    MUL r11=r10,r10
    AI  r12=r11,5
    RET r12
"""


def run_diamond(func, r1, r2):
    return execute(func, regs={gpr(1): r1, gpr(2): r2}).return_value


class TestDuplicationSource:
    def test_diamond_arms_qualify(self):
        func = parse_function(DIAMOND)
        pdg = RegionPDG(func, rs6k(), list(func.blocks), "top")
        assert duplication_source(pdg, "then_arm") == ("join", ["else_arm"])
        assert duplication_source(pdg, "else_arm") == ("join", ["then_arm"])

    def test_branching_block_does_not_qualify(self):
        func = parse_function(DIAMOND)
        pdg = RegionPDG(func, rs6k(), list(func.blocks), "top")
        assert duplication_source(pdg, "top") is None

    def test_join_with_side_exit_pred_rejected(self):
        func = parse_function("""
function sidexit
top:
    C  cr0=r1,r2
    BF b,cr0,0x1/lt
a:
    C  cr1=r1,r9
    BF join,cr1,0x2/gt
a2:
    AI r10=r1,1
b:
    AI r10=r2,7
join:
    MUL r11=r10,r10
    RET r11
""")
        pdg = RegionPDG(func, rs6k(), list(func.blocks), "top")
        # b's other pred `a` has two successors: no duplication allowed
        assert duplication_source(pdg, "a2") is None

    def test_region_header_join_rejected(self, figure2):
        pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
        for label in pdg.member_labels:
            src = duplication_source(pdg, label)
            assert src is None or src[0] != "CL.0"


class TestDuplicationScheduling:
    def schedule(self, allow):
        func = parse_function(DIAMOND)
        report = global_schedule(
            func, rs6k(), ScheduleLevel.SPECULATIVE,
            live_at_exit=frozenset({gpr(12)}),
            allow_duplication=allow,
        )
        verify_function(func)
        return func, report

    def test_disabled_by_default(self):
        func, report = self.schedule(allow=False)
        assert not any(m.duplicated for m in report.motions)
        assert len(func.block("join").instrs) == 3

    def test_join_work_hoists_into_both_arms(self):
        func, report = self.schedule(allow=True)
        dup = [m for m in report.motions if m.duplicated]
        assert dup, "expected at least one duplicated motion"
        mul = dup[0]
        assert mul.opcode == "MUL"
        assert mul.src == "join"
        # the motion lands in one arm, its copy in the other: both paths
        # end up computing the square before reaching the join
        assert mul.duplicated_into == ("then_arm",)
        for arm in ("then_arm", "else_arm"):
            ops = [i.opcode.mnemonic for i in func.block(arm).instrs]
            assert "MUL" in ops, arm
        join_ops = [i.opcode.mnemonic for i in func.block("join").instrs]
        assert "MUL" not in join_ops

    def test_semantics_preserved_on_both_paths(self):
        func, _report = self.schedule(allow=True)
        for r1, r2 in ((1, 9), (9, 1), (3, 3)):
            expected = run_diamond(parse_function(DIAMOND), r1, r2)
            assert run_diamond(func, r1, r2) == expected

    def test_duplication_shortens_the_join_path(self):
        # hoisting the 5-cycle MUL above the join overlaps it with the
        # arms' own work on both paths
        from repro.sim import simulate_path_iterations, simulate_trace
        plain, _ = self.schedule(allow=False)
        dup, _ = self.schedule(allow=True)
        for path in (["top", "then_arm", "join"],
                     ["top", "else_arm", "join"]):
            p = simulate_trace([plain.block(l) for l in path], rs6k())
            d = simulate_trace([dup.block(l) for l in path], rs6k())
            assert d.cycles <= p.cycles

    def test_duplicated_stores_stay_per_path(self):
        func = parse_function("""
function dupstore
top:
    C  cr0=r1,r2
    BF e,cr0,0x1/lt
t:
    AI r10=r1,1
    B  join
e:
    AI r10=r2,7
join:
    ST r10=>out(r9,0)
    AI r12=r10,1
    RET r12
""")
        report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE,
                                 live_at_exit=frozenset({gpr(12)}),
                                 allow_duplication=True)
        verify_function(func)
        for r1, r2 in ((1, 9), (9, 1)):
            ref = parse_function("""
function dupstore
top:
    C  cr0=r1,r2
    BF e,cr0,0x1/lt
t:
    AI r10=r1,1
    B  join
e:
    AI r10=r2,7
join:
    ST r10=>out(r9,0)
    AI r12=r10,1
    RET r12
""")
            a = execute(ref, regs={gpr(1): r1, gpr(2): r2, gpr(9): 100})
            b = execute(func, regs={gpr(1): r1, gpr(2): r2, gpr(9): 100})
            assert a.return_value == b.return_value
            assert a.memory == b.memory


class TestPipelineIntegration:
    SRC = """
int f(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int v = a[i];
        int w = 0;
        if (v < 0) { w = 0 - v; } else { w = v + 3; }
        s = s + w * w;
    }
    return s;
}
"""

    def test_duplication_config_preserves_semantics(self):
        import random
        rng = random.Random(13)
        data = [rng.randrange(-50, 50) for _ in range(30)]
        expected = sum((-v if v < 0 else v + 3) ** 2 for v in data)
        for allow in (False, True):
            config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                    allow_duplication=allow)
            result = compile_c(self.SRC, level=ScheduleLevel.SPECULATIVE,
                               config=config)
            run = result["f"].run(list(data), 30)
            assert run.return_value == expected
