"""Function-level driver tests: policy filters, region selection."""

from repro.ir import gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.sched import ScheduleLevel, default_live_at_exit, global_schedule


def test_irreducible_function_skipped():
    # two-entry cycle: the paper's reducibility assumption fails, so the
    # driver must refuse to schedule rather than crash
    func = parse_function("""
function irreducible
a:
    C cr0=r1,r2
    BT two,cr0,0x1/lt
one:
    AI r3=r3,1
    B two
two:
    AI r3=r3,2
    C cr1=r3,r9
    BT one,cr1,0x1/lt
done:
    RET r3
""")
    report = global_schedule(func, rs6k(), ScheduleLevel.SPECULATIVE)
    assert report.regions == []
    assert report.skipped_regions  # everything skipped
    verify_function(func)


def test_region_filter(figure2):
    report = global_schedule(figure2, rs6k(), ScheduleLevel.USEFUL,
                             region_filter=lambda spec: False)
    assert report.regions == []
    assert report.motions == []


def test_three_deep_nest_schedules_two_inner_levels():
    func = parse_function("""
function deep
pre:
    LI r1=0
L1:
    AI r1=r1,1
L2:
    AI r2=r2,1
L3:
    AI r3=r3,1
L3x:
    C cr0=r3,r7
    BT L3,cr0,0x1/lt
L2x:
    C cr1=r2,r8
    BT L2,cr1,0x1/lt
L1x:
    C cr2=r1,r9
    BT L1,cr2,0x1/lt
post:
    RET r1
""")
    report = global_schedule(func, rs6k(), ScheduleLevel.USEFUL)
    scheduled = {r.header for r in report.regions}
    # inner (L3) and outer-of-inner (L2) qualify; L1 and the body do not
    assert "L3" in scheduled
    assert "L2" in scheduled
    assert "L1" not in scheduled
    verify_function(func)

    report2 = global_schedule(func, rs6k(), ScheduleLevel.USEFUL,
                              inner_levels_only=False)
    assert "L1" in {r.header for r in report2.regions}


def test_default_live_at_exit_covers_gprs(figure2):
    live = default_live_at_exit(figure2)
    assert gpr(28) in live and gpr(30) in live and gpr(31) in live
    from repro.ir import cr
    assert cr(7) not in live  # condition registers excluded


def test_level_none_is_identity(figure2):
    before = {b.label: [i.uid for i in b.instrs] for b in figure2.blocks}
    report = global_schedule(figure2, rs6k(), ScheduleLevel.NONE)
    after = {b.label: [i.uid for i in b.instrs] for b in figure2.blocks}
    assert before == after and report.regions == []


def test_report_aggregation(figure2):
    report = global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
    assert len(report.motions) == (len(report.useful_motions)
                                   + len(report.speculative_motions))
    assert {m.uid for m in report.speculative_motions} == {5, 12}
