"""Unit tests for the event-driven ready queue (the PR-5 tentpole).

The equivalence suite proves the queue reproduces the seed scan
end-to-end; these tests pin the *mechanisms* in isolation: each
candidate is pushed to its heap exactly once, the timing wheel holds
activations until their earliest-start cycle, the dependence-state
listener fires on the last predecessor only, graph mutations trigger
rebuilds, and selection honours unit capacity in key order.
"""

from repro.ir import parse_function
from repro.machine import rs6k
from repro.obs.metrics import MetricsCollector
from repro.pdg import build_block_ddg
from repro.sched import DependenceState
from repro.sched.candidates import Candidate
from repro.sched.heuristics import compute_region_priorities, full_priority_key
from repro.sched.ready import _PARKED, _READY, _WAITING, ReadyQueue


def make_queue(metrics=None):
    """Queue over the standard 4-instruction block, terminator excluded."""
    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    C  cr0=r2,r3
    BT a,cr0,0x1/lt
""")
    block = func.block("a")
    machine = rs6k()
    ddg = build_block_ddg(block, machine)
    state = DependenceState(ddg, machine)
    state.begin_block()
    priorities = compute_region_priorities([block], ddg, machine)
    cands = [Candidate(ins, "a", useful=True) for ins in block.instrs]
    queue = ReadyQueue(
        state,
        ((c, full_priority_key(c, priorities)) for c in cands),
        block.terminator,
        metrics if metrics is not None else MetricsCollector(),
    )
    return block, state, queue


def drain(queue):
    """Judge everything judgeable at the current scan point."""
    queue.scan_start()
    while (entry := queue.next_evaluation()) is not None:
        queue.promote(entry)


def test_terminator_is_held_out_and_foreign_branches_dropped():
    block, state, queue = make_queue()
    term = queue.terminator_entry
    assert term is not None and term.cand.ins is block.terminator
    assert id(block.terminator) not in queue._by_id
    assert len(queue._entries) == 3          # L, AI, C


def test_only_roots_become_ready_and_exactly_once():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    queue.begin_cycle(0)
    drain(queue)
    assert queue.ready_count == 1            # the load is the only root
    # further scan points push nothing new
    drain(queue)
    drain(queue)
    assert metrics.counters["sched.queue.ready_pushes"] == 1


def test_listener_fires_on_last_predecessor_and_wheel_delays_entry():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    entry_ai = queue._by_id[id(ai)]
    assert entry_ai.status == _WAITING
    # issuing the load fulfils AI's last predecessor mid-cycle; its
    # earliest start (cycle 2: exec 1 + delay 1) lands it on the wheel
    state.mark_issued(load, 0)
    queue.pop_issue(queue._by_id[id(load)])
    assert entry_ai.status != _WAITING
    assert entry_ai.status != _READY
    assert metrics.counters["sched.queue.wheel_holds"] == 1
    queue.begin_cycle(1)
    drain(queue)
    assert queue.ready_count == 0            # still held
    queue.begin_cycle(2)
    drain(queue)
    assert queue.ready_count == 1            # matured exactly on time
    assert entry_ai.status == _READY


def test_select_respects_unit_capacity():
    from repro.ir.opcodes import UnitType

    block, state, queue = make_queue()
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    free = [1] * len(list(UnitType))
    chosen = queue.select(free)
    assert chosen.cand.ins is load
    free[chosen.unit_idx] = 0                # unit exhausted
    assert queue.select(free) is None


def test_parked_entry_leaves_heap_until_reflagged():
    block, state, queue = make_queue()
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    entry = queue._by_id[id(load)]
    queue.park(entry)
    assert queue.ready_count == 0
    assert entry.status == _PARKED
    from repro.ir.opcodes import UnitType
    assert queue.select([1] * len(list(UnitType))) is None


def test_version_bump_triggers_rebuild_at_scan_start():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    before = metrics.counters.get("sched.queue.rebuilds", 0)
    # an honest mutation bumps the version; the next scan point rebuilds
    from repro.pdg.data_deps import DepKind
    state.ddg.add_edge(load, cmp_i, DepKind.ANTI, 0)
    drain(queue)
    assert metrics.counters["sched.queue.rebuilds"] == before + 1
    # the load is still the sole root and still (exactly once more) ready
    assert queue.ready_count == 1


def test_detach_unsubscribes_the_listener():
    block, state, queue = make_queue()
    load = block.instrs[0]
    queue.detach()
    assert state._listener is None
    state.mark_issued(load, 0)               # must not touch the queue
    assert queue._by_id[id(block.instrs[1])].status == _WAITING
