"""Unit tests for the event-driven dense ready queue (the SoA core).

The equivalence suite proves the queue reproduces the seed scan
end-to-end; these tests pin the *mechanisms* in isolation: each
candidate is pushed to its heap exactly once, the timing wheel holds
activations until their earliest-start cycle, the dependence-state
listener fires on the last predecessor only, graph mutations trigger
rebuilds, and selection honours unit capacity in key order.
"""

from repro.ir import parse_function
from repro.machine import rs6k
from repro.obs.metrics import MetricsCollector
from repro.pdg import build_block_ddg
from repro.sched.candidates import Candidate
from repro.sched.heuristics import compute_region_priorities, full_priority_key
from repro.sched.soa import (
    _PARKED,
    _READY,
    _WAITING,
    DenseDependenceState,
    DenseReadyQueue,
    pack_rows,
)


def make_queue(metrics=None):
    """Queue over the standard 4-instruction block, terminator excluded."""
    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    C  cr0=r2,r3
    BT a,cr0,0x1/lt
""")
    block = func.block("a")
    machine = rs6k()
    ddg = build_block_ddg(block, machine)
    state = DenseDependenceState(ddg, machine)
    state.begin_block()
    priorities = compute_region_priorities([block], ddg, machine)
    cands = [Candidate(ins, "a", useful=True) for ins in block.instrs]
    rows = [full_priority_key(c, priorities) for c in cands]
    pkeys = pack_rows([(dup, *rest) for dup, rest in rows])
    queue = DenseReadyQueue(
        state,
        cands,
        pkeys,
        block.terminator,
        metrics if metrics is not None else MetricsCollector(),
    )
    return block, state, queue


def seq_of(queue, ins):
    """The collection sequence number of ``ins`` in ``queue``."""
    return next(s for s, c in enumerate(queue.cands) if c.ins is ins)


def drain(queue):
    """Judge everything judgeable at the current scan point."""
    queue.scan_start()
    while (seq := queue.next_evaluation()) >= 0:
        queue.promote(seq)


def test_terminator_is_held_out_and_foreign_branches_dropped():
    block, state, queue = make_queue()
    term_seq = queue.term_seq
    assert term_seq >= 0 and queue.cands[term_seq].ins is block.terminator
    assert term_seq not in queue._active
    assert len(queue._active) == 3           # L, AI, C


def test_only_roots_become_ready_and_exactly_once():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    queue.begin_cycle(0)
    drain(queue)
    assert queue.ready_count == 1            # the load is the only root
    # further scan points push nothing new
    drain(queue)
    drain(queue)
    assert metrics.counters["sched.queue.ready_pushes"] == 1


def test_listener_fires_on_last_predecessor_and_wheel_delays_entry():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    seq_ai = seq_of(queue, ai)
    assert queue.status[seq_ai] == _WAITING
    # issuing the load fulfils AI's last predecessor mid-cycle; its
    # earliest start (cycle 2: exec 1 + delay 1) lands it on the wheel
    state.mark_issued(load, 0)
    queue.pop_issue(seq_of(queue, load))
    assert queue.status[seq_ai] != _WAITING
    assert queue.status[seq_ai] != _READY
    assert metrics.counters["sched.queue.wheel_holds"] == 1
    queue.begin_cycle(1)
    drain(queue)
    assert queue.ready_count == 0            # still held
    queue.begin_cycle(2)
    drain(queue)
    assert queue.ready_count == 1            # matured exactly on time
    assert queue.status[seq_ai] == _READY


def test_select_respects_unit_capacity():
    from repro.ir.opcodes import UnitType

    block, state, queue = make_queue()
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    free = [1] * len(list(UnitType))
    chosen = queue.select(free)
    assert chosen >= 0 and queue.cands[chosen].ins is load
    free[queue.units[chosen]] = 0            # unit exhausted
    assert queue.select(free) < 0


def test_parked_entry_leaves_heap_until_reflagged():
    block, state, queue = make_queue()
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    seq = seq_of(queue, load)
    queue.park(seq)
    assert queue.ready_count == 0
    assert queue.status[seq] == _PARKED
    from repro.ir.opcodes import UnitType
    assert queue.select([1] * len(list(UnitType))) < 0


def test_version_bump_triggers_rebuild_at_scan_start():
    metrics = MetricsCollector()
    block, state, queue = make_queue(metrics)
    load, ai, cmp_i, bt = block.instrs
    queue.begin_cycle(0)
    drain(queue)
    before = metrics.counters.get("sched.queue.rebuilds", 0)
    # an honest mutation bumps the version; the next scan point rebuilds
    from repro.pdg.data_deps import DepKind
    state.ddg.add_edge(load, cmp_i, DepKind.ANTI, 0)
    drain(queue)
    assert metrics.counters["sched.queue.rebuilds"] == before + 1
    # the load is still the sole root and still (exactly once more) ready
    assert queue.ready_count == 1


def test_detach_unsubscribes_the_listener():
    block, state, queue = make_queue()
    load = block.instrs[0]
    queue.detach()
    assert state._listener is None
    state.mark_issued(load, 0)               # must not touch the queue
    assert queue.status[seq_of(queue, block.instrs[1])] == _WAITING