"""Property tests for the struct-of-arrays lowering (interner + snapshot).

The SoA scheduler core trusts two lowering steps completely: the dense
interning of instructions to array indices (``DenseDDG.index``) and the
CSR flattening of the dependence adjacency with precomputed edge weights.
These properties pin them against the object graph on randomized real
regions (the differential fuzzer's program generator, compiled to IR),
plus the cache-invalidation contract (``DDG.version`` bumps) and the
order-preservation of :func:`pack_rows`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.pdg.data_deps import DepKind, build_block_ddg
from repro.sched.candidates import ScheduleLevel
from repro.sched.regions import build_region_pdg, find_regions
from repro.sched.soa import pack_rows
from repro.verify.generator import generate_program


def region_ddgs(seed):
    """``(machine, ddg)`` for every region of a generated program."""
    machine = CONFIGS["rs6k"]()
    program = generate_program(seed)
    units = compile_c(program.source, machine=machine,
                      level=ScheduleLevel.NONE)
    out = []
    for unit in units.units.values():
        for spec in find_regions(unit.func):
            pdg = build_region_pdg(unit.func, machine, spec)
            out.append((machine, pdg.ddg))
    return out


def expected_weight(machine, edge):
    return (machine.exec_time(edge.src) + edge.delay
            if edge.kind is DepKind.FLOW else 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_interning_round_trips_uid_and_index(seed):
    for machine, ddg in region_ddgs(seed):
        dense = ddg.to_dense(machine)
        assert dense.n == len(ddg.instructions) == len(dense.instrs)
        for i, ins in enumerate(dense.instrs):
            # id -> index -> instruction is the identity both ways
            assert dense.index[id(ins)] == i
            assert dense.instrs[dense.index[id(ins)]] is ins
        assert len(dense.index) == dense.n  # bijection: no id collisions
        # uids are unique region-wide, so uid round-trips through the
        # interning too (the packed priority rows rely on this)
        uids = {ins.uid for ins in dense.instrs}
        assert len(uids) == dense.n


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_csr_adjacency_equals_object_graph(seed):
    for machine, ddg in region_ddgs(seed):
        dense = ddg.to_dense(machine)
        for i, ins in enumerate(dense.instrs):
            succs = sorted(
                (dense.succ_idx[k], dense.succ_w[k])
                for k in range(dense.succ_off[i], dense.succ_off[i + 1]))
            expect = sorted(
                (dense.index[id(e.dst)], expected_weight(machine, e))
                for e in ddg.succs(ins))
            assert succs == expect
            preds = sorted(
                (dense.pred_idx[k], dense.pred_w[k])
                for k in range(dense.pred_off[i], dense.pred_off[i + 1]))
            expect = sorted(
                (dense.index[id(e.src)], expected_weight(machine, e))
                for e in ddg.preds(ins))
            assert preds == expect
        assert len(dense.succ_idx) == len(dense.pred_idx) == ddg.edge_count()


def test_version_bump_invalidates_snapshot_and_keeps_indices_stable():
    from repro.ir.parser import parse_function

    func = parse_function("""
function f
a:
    L  r1=x(r10,0)
    AI r2=r1,1
    C  cr0=r2,r3
    BT a,cr0,0x1/lt
""")
    machine = CONFIGS["rs6k"]()
    ddg = build_block_ddg(func.block("a"), machine)
    first = ddg.to_dense(machine)
    assert ddg.to_dense(machine) is first       # cached while version holds

    load, ai, cmp_i, bt = func.block("a").instrs
    ddg.add_edge(load, cmp_i, DepKind.ANTI, 0)  # bumps ddg.version
    second = ddg.to_dense(machine)
    assert second is not first
    assert second.version == ddg.version > first.version
    # the instruction list is append-only: indices survive the rebuild
    for ins in func.block("a").instrs:
        assert second.index[id(ins)] == first.index[id(ins)]
    # ... and the new edge is visible in the rebuilt CSR
    i, j = second.index[id(load)], second.index[id(cmp_i)]
    assert j in second.succ_idx[second.succ_off[i]:second.succ_off[i + 1]]

    other = CONFIGS["ss4"]()
    assert ddg.to_dense(other) is not second    # keyed on machine identity


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_pack_rows_preserves_lexicographic_order(data):
    width = data.draw(st.integers(min_value=1, max_value=5))
    rows = data.draw(st.lists(
        st.tuples(*[st.integers(min_value=-(1 << 20), max_value=1 << 20)
                    for _ in range(width)]),
        min_size=1, max_size=30))
    packed = pack_rows(rows)
    for a, pa in zip(rows, packed):
        for b, pb in zip(rows, packed):
            assert (a < b) == (pa < pb)
            assert (a == b) == (pa == pb)
