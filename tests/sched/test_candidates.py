"""Candidate blocks / candidate instructions (Section 5.1)."""

import pytest

from repro.ir import Opcode
from repro.machine import rs6k
from repro.pdg import RegionPDG
from repro.sched import ScheduleLevel, candidate_blocks, collect_candidates


@pytest.fixture
def pdg(figure2):
    return RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")


class TestCandidateBlocks:
    def test_useful_level_is_equiv_only(self, pdg):
        equiv, spec = candidate_blocks(pdg, "CL.0", ScheduleLevel.USEFUL)
        assert equiv == ["CL.9"]
        assert spec == []

    def test_speculative_level_adds_cspdg_successors(self, pdg):
        # C(A) = EQUIV(A) + successors of A + successors of EQUIV(A)
        equiv, spec = candidate_blocks(pdg, "CL.0", ScheduleLevel.SPECULATIVE)
        assert equiv == ["CL.9"]
        assert set(spec) == {"BL2", "CL.6", "CL.4", "CL.11"}

    def test_none_level_empty(self, pdg):
        assert candidate_blocks(pdg, "CL.0", ScheduleLevel.NONE) == ([], [])

    def test_bl2_speculative_sources(self, pdg):
        # from BL2: its successor BL3, and BL5 via EQUIV(BL2) = {BL4}
        equiv, spec = candidate_blocks(pdg, "BL2", ScheduleLevel.SPECULATIVE)
        assert equiv == ["CL.6"]
        assert set(spec) == {"BL3", "BL5"}

    def test_leaf_block_has_no_candidates(self, pdg):
        equiv, spec = candidate_blocks(pdg, "CL.9", ScheduleLevel.SPECULATIVE)
        assert equiv == [] and spec == []

    def test_two_branch_speculation_extension(self, pdg):
        # the paper limits itself to 1; the knob generalises Definition 7
        _, spec1 = candidate_blocks(pdg, "CL.0", ScheduleLevel.SPECULATIVE,
                                    max_speculation=1)
        _, spec2 = candidate_blocks(pdg, "CL.0", ScheduleLevel.SPECULATIVE,
                                    max_speculation=2)
        assert set(spec1) < set(spec2)
        assert {"BL3", "BL5", "BL7", "BL9"} <= set(spec2)


class TestCandidateInstructions:
    def test_own_instructions_always_included(self, pdg):
        cands = collect_candidates(pdg, "CL.9", [], [])
        assert {c.ins.uid for c in cands} == {18, 19, 20}
        assert all(c.useful for c in cands)

    def test_foreign_branches_excluded(self, pdg):
        cands = collect_candidates(pdg, "CL.0", ["CL.9"], ["BL2"])
        uids = {c.ins.uid for c in cands}
        assert 20 not in uids  # CL.9's BT never moves
        assert 6 not in uids   # BL2's BF never moves
        assert {18, 19} <= uids
        assert 5 in uids

    def test_speculative_flag(self, pdg):
        cands = collect_candidates(pdg, "CL.0", ["CL.9"], ["BL2"])
        flags = {c.ins.uid: c.useful for c in cands}
        assert flags[18] is True   # from EQUIV: useful
        assert flags[5] is False   # from a CSPDG successor: speculative

    def test_stores_excluded_from_speculative_sources(self, figure2):
        # swap I5 for a store and check it is not collected speculatively
        from repro.ir import Instruction, MemRef, gpr
        bl2 = figure2.block("BL2")
        store = Instruction(Opcode.ST, uses=(gpr(1), gpr(2)),
                            mem=MemRef(gpr(2), 0))
        figure2.assign_uid(store)
        bl2.instrs.insert(0, store)
        pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
        cands = collect_candidates(pdg, "CL.0", [], ["BL2"])
        assert store.uid not in {c.ins.uid for c in cands}
        # but the same store IS a candidate for useful motion
        cands_useful = collect_candidates(pdg, "CL.0", ["BL2"], [])
        assert store.uid in {c.ins.uid for c in cands_useful}
