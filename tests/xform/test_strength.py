"""Strength-reduction tests."""

import pytest

from repro.ir import Opcode, gpr, parse_function, verify_function
from repro.lang import compile_c_functions
from repro.sim import execute
from repro.xform import strength_reduce


def lower(src):
    (cf,) = compile_c_functions(src).values()
    return cf


def run(cf, *args, memory=None):
    regs = {}
    memory = dict(memory or {})
    base = 0x1000
    for param, value in zip(cf.params, args):
        reg = cf.param_regs[param.name]
        if param.is_array:
            for i, word in enumerate(value):
                memory[base + 4 * i] = word
            regs[reg] = base
            base += 0x1000
        else:
            regs[reg] = value
    return execute(cf.func, regs=regs, memory=memory)


SUM_SRC = """
int f(int a[], int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s = s + a[i]; i = i + 1; }
    return s;
}
"""


class TestBasicReduction:
    def test_address_arithmetic_removed(self):
        cf = lower(SUM_SRC)
        ops_before = [i.opcode for i in cf.func.instructions()]
        report = strength_reduce(cf.func)
        verify_function(cf.func)
        assert report.rewritten_accesses == 1
        assert report.deleted_instructions == 2  # the SL and the A
        # no SL/A remains inside the loop body blocks
        loop_ops = [i.opcode for b in cf.func.blocks
                    if b.label.startswith("LH")
                    for i in b.instrs]
        assert Opcode.SL not in loop_ops

    def test_pointer_step_matches_element_size(self):
        cf = lower(SUM_SRC)
        report = strength_reduce(cf.func)
        (header, pointer, base, iv) = report.pointers[0]
        bumps = [i for i in cf.func.instructions()
                 if i.opcode is Opcode.AI and i.defs == (pointer,)
                 and "step" in i.comment]
        assert len(bumps) == 1 and bumps[0].imm == 4

    @pytest.mark.parametrize("n", [0, 1, 2, 7])
    def test_semantics(self, n):
        cf = lower(SUM_SRC)
        strength_reduce(cf.func)
        data = [(i + 1) * 3 for i in range(n)]
        assert run(cf, data, n).return_value == sum(data)


class TestDerivedOffsets:
    def test_minmax_pair_access(self):
        # a[i] and a[i+1] must share one pointer with displacements 0 and 4
        src = """
int f(int a[], int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s = s + a[i] - a[i + 1]; i = i + 2; }
    return s;
}
"""
        cf = lower(src)
        report = strength_reduce(cf.func)
        verify_function(cf.func)
        assert len(report.pointers) == 1
        assert report.rewritten_accesses == 2
        loads = [i for i in cf.func.instructions() if i.opcode is Opcode.L]
        loop_loads = [l for l in loads if l.mem.symbol == "a"]
        assert sorted(l.mem.disp for l in loop_loads) == [0, 4]
        data = [9, 2, 7, 5, 1, 8]
        res = run(cf, data, 6)
        assert res.return_value == (9 - 2) + (7 - 5) + (1 - 8)

    def test_step_scales_with_stride(self):
        src = """
int f(int a[], int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s = s + a[i]; i = i + 2; }
    return s;
}
"""
        cf = lower(src)
        report = strength_reduce(cf.func)
        (_h, pointer, _b, _iv) = report.pointers[0]
        bump = next(i for i in cf.func.instructions()
                    if i.opcode is Opcode.AI and i.defs == (pointer,)
                    and "step" in i.comment)
        assert bump.imm == 8  # stride 2 elements * 4 bytes


class TestTwoArrays:
    def test_separate_pointers(self):
        src = """
int f(int a[], int b[], int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s = s + a[i] * b[i]; i = i + 1; }
    return s;
}
"""
        cf = lower(src)
        report = strength_reduce(cf.func)
        assert len(report.pointers) == 2
        a = [1, 2, 3]
        b = [4, 5, 6]
        assert run(cf, a, b, 3).return_value == 1 * 4 + 2 * 5 + 3 * 6

    def test_stores_rewritten_too(self):
        src = """
int f(int a[], int b[], int n) {
    int i = 0;
    while (i < n) { b[i] = a[i] + 1; i = i + 1; }
    return b[0];
}
"""
        cf = lower(src)
        report = strength_reduce(cf.func)
        assert report.rewritten_accesses == 2
        res = run(cf, [10, 20], [0, 0], 2)
        assert res.memory[0x2000] == 11 and res.memory[0x2004] == 21


class TestSafetyConditions:
    def test_address_escaping_loop_blocks_reduction(self):
        # addr used by a call: the chain must not be transformed
        func = parse_function("""
function esc
pre:
    LI r1=0
loop:
    SL r2=r1,2
    A  r3=r9,r2
    L  r4=x(r3,0)
    CALL use(r3)
    AI r1=r1,1
    C  cr0=r1,r8
    BT loop,cr0,0x1/lt
""")
        from repro.xform.strength import strength_reduce as sr
        report = sr(func)
        assert report.rewritten_accesses == 0

    def test_step_between_address_and_use_blocks_reduction(self):
        func = parse_function("""
function mid
pre:
    LI r1=0
loop:
    SL r2=r1,2
    A  r3=r9,r2
    AI r1=r1,1
    L  r4=x(r3,0)
    C  cr0=r1,r8
    BT loop,cr0,0x1/lt
""")
        report = strength_reduce(func)
        assert report.rewritten_accesses == 0

    def test_multi_def_iv_ignored(self):
        func = parse_function("""
function twodefs
pre:
    LI r1=0
loop:
    SL r2=r1,2
    A  r3=r9,r2
    L  r4=x(r3,0)
    AI r1=r1,1
    AI r1=r1,1
    C  cr0=r1,r8
    BT loop,cr0,0x1/lt
""")
        report = strength_reduce(func)
        assert report.rewritten_accesses == 0

    def test_variant_base_ignored(self):
        func = parse_function("""
function varbase
pre:
    LI r1=0
loop:
    AI r9=r9,4
    SL r2=r1,2
    A  r3=r9,r2
    L  r4=x(r3,0)
    AI r1=r1,1
    C  cr0=r1,r8
    BT loop,cr0,0x1/lt
""")
        report = strength_reduce(func)
        assert report.rewritten_accesses == 0

    def test_nested_loops_only_innermost(self):
        src = """
int f(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) { s = s + a[j]; }
        s = s + a[i];
    }
    return s;
}
"""
        cf = lower(src)
        report = strength_reduce(cf.func)
        verify_function(cf.func)
        # the inner a[j] walk is reduced; the outer a[i] access is not
        # (outer loop is not innermost), and semantics hold regardless
        assert len(report.pointers) >= 1
        data = [2, 4, 6]
        expected = sum(sum(data) + data[i] for i in range(3))
        assert run(cf, data, 3).return_value == expected
