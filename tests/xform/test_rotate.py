"""Loop-rotation tests (Section 6, step 3)."""

import pytest

from repro.cfg import ControlFlowGraph, ENTRY, LoopNest, dominator_tree
from repro.ir import (
    Builder,
    CR_LT,
    Function,
    cr,
    gpr,
    verify_function,
    verify_reachable,
)
from repro.sim import execute
from repro.xform import TransformError, rotatable, rotate_loop


def two_block_loop():
    """header (load/add) + latch (control), the shape rotation targets."""
    f = Function("sum2")
    b = Builder(f)
    r_sum, r_i, r_n, r_base, r_t, c0 = (gpr(3), gpr(4), gpr(5), gpr(6),
                                        gpr(7), cr(0))
    b.start_block("init")
    b.li(r_sum, 0)
    b.li(r_i, 0)
    b.cmp(c0, r_i, r_n)
    b.bf("done", c0, CR_LT)
    b.start_block("H")
    b.load(r_t, r_base, 0, symbol="a")
    b.add(r_sum, r_sum, r_t)
    b.start_block("L")
    b.ai(r_base, r_base, 4)
    b.ai(r_i, r_i, 1)
    b.cmp(c0, r_i, r_n)
    b.bt("H", c0, CR_LT)
    b.start_block("done")
    b.ret(r_sum)
    verify_function(f)
    return f


def the_loop(func):
    cfg = ControlFlowGraph(func)
    dom = dominator_tree(cfg.graph, ENTRY)
    return LoopNest(cfg.graph, dom).loops[0]


def run_sum(func, n):
    mem = {1000 + 4 * i: i + 1 for i in range(n)}
    return execute(func, regs={gpr(5): n, gpr(6): 1000},
                   memory=mem).return_value


class TestRotateSemantics:
    @pytest.mark.parametrize("n", range(0, 9))
    def test_any_trip_count(self, n):
        func = two_block_loop()
        rotate_loop(func, the_loop(func))
        verify_function(func)
        verify_reachable(func)
        assert run_sum(func, n) == n * (n + 1) // 2

    def test_new_loop_excludes_original_header(self):
        # "copying their first basic block after the end of the loop":
        # the original header becomes the loop's prologue
        func = two_block_loop()
        report = rotate_loop(func, the_loop(func))
        assert report.header == "H"
        assert report.new_loop_header == "L"
        new_loop = the_loop(func)
        assert "H" not in new_loop.body
        assert report.clone_header in new_loop.body
        assert "L" in new_loop.body

    def test_header_copy_is_last_loop_block(self):
        # the copied header sits at the loop's end, holding the *next*
        # iteration's leading instructions -- the material the second
        # scheduling pass pipelines upward
        func = two_block_loop()
        report = rotate_loop(func, the_loop(func))
        clone = func.block(report.clone_header)
        mnemonics = [i.opcode.mnemonic for i in clone.instrs]
        assert mnemonics[0] == "L"  # next iteration's load


class TestRotatable:
    def test_two_block_loop_is_rotatable(self):
        func = two_block_loop()
        assert rotatable(func, the_loop(func))

    def test_minmax_loop_not_rotatable(self, figure2):
        # 10 blocks > 4, and the header has two in-loop successors
        assert not rotatable(figure2, the_loop(figure2))
        assert not rotatable(figure2, the_loop(figure2), max_blocks=100)

    def test_self_loop_not_rotatable(self):
        from repro.ir import parse_function
        func = parse_function("""
function s
a:
    LI r1=0
b:
    AI r1=r1,1
    C cr0=r1,r9
    BT b,cr0,0x1/lt
""")
        assert not rotatable(func, the_loop(func))

    def test_rotate_refuses_unrotatable(self, figure2):
        with pytest.raises(TransformError):
            rotate_loop(figure2, the_loop(figure2))
