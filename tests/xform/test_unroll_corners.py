"""Unroll/rotate corner cases: interior latches, continue loops."""

import pytest

from repro.cfg import ControlFlowGraph, ENTRY, LoopNest, dominator_tree
from repro.ir import gpr, parse_function, verify_function, verify_reachable
from repro.sim import execute
from repro.xform import rotate_loop, rotatable, unroll_loop


def the_loop(func):
    cfg = ControlFlowGraph(func)
    dom = dominator_tree(cfg.graph, ENTRY)
    return LoopNest(cfg.graph, dom).loops[0]


#: a loop with TWO back edges (a continue-style early latch)
TWO_LATCHES = """
function twolatch
pre:
    LI r1=0
    LI r2=0
head:
    AI r1=r1,1
    C  cr0=r1,r9
    BT head,cr0,0x4/eq
mid:
    AI r2=r2,1
    C  cr1=r1,r8
    BT head,cr1,0x1/lt
done:
    RET r2
"""


def run_twolatch(func, skip_at, n):
    res = execute(func, regs={gpr(9): skip_at, gpr(8): n})
    return res.return_value


class TestMultipleLatches:
    def test_unroll_with_two_back_edges(self):
        func = parse_function(TWO_LATCHES)
        expected = [run_twolatch(parse_function(TWO_LATCHES), 3, n)
                    for n in range(8)]
        loop = the_loop(func)
        assert sorted(loop.latches) == ["head", "mid"]
        unroll_loop(func, loop)
        verify_function(func)
        verify_reachable(func)
        got = [run_twolatch(func, 3, n) for n in range(8)]
        assert got == expected

    def test_rotate_with_two_back_edges(self):
        func = parse_function(TWO_LATCHES)
        expected = [run_twolatch(parse_function(TWO_LATCHES), 3, n)
                    for n in range(8)]
        loop = the_loop(func)
        if not rotatable(func, loop):
            pytest.skip("loop shape not rotatable")
        rotate_loop(func, loop)
        verify_function(func)
        verify_reachable(func)
        got = [run_twolatch(func, 3, n) for n in range(8)]
        assert got == expected


class TestUnconditionalLatch:
    #: while-true-with-break shape: the latch is an unconditional B
    SRC = """
function btrue
pre:
    LI r1=0
head:
    AI r1=r1,1
    C  cr0=r1,r8
    BF out,cr0,0x1/lt
body:
    AI r2=r2,3
    B  head
out:
    RET r2
"""

    def test_unroll(self):
        func = parse_function(self.SRC)
        ref = parse_function(self.SRC)
        loop = the_loop(func)
        unroll_loop(func, loop)
        verify_function(func)
        verify_reachable(func)
        for n in range(6):
            a = execute(ref, regs={gpr(8): n}).return_value
            b = execute(func, regs={gpr(8): n}).return_value
            assert a == b

    def test_rotate(self):
        func = parse_function(self.SRC)
        ref = parse_function(self.SRC)
        loop = the_loop(func)
        if not rotatable(func, loop):
            pytest.skip("loop shape not rotatable")
        rotate_loop(func, loop)
        verify_function(func)
        for n in range(6):
            a = execute(ref, regs={gpr(8): n}).return_value
            b = execute(func, regs={gpr(8): n}).return_value
            assert a == b


class TestDoubleUnroll:
    def test_unroll_twice_keeps_semantics(self):
        src = """
function s
pre:
    LI r1=0
    LI r2=0
    C  cr0=r1,r8
    BF out,cr0,0x1/lt
body:
    AI r2=r2,5
    AI r1=r1,1
    C  cr0=r1,r8
    BT body,cr0,0x1/lt
out:
    RET r2
"""
        func = parse_function(src)
        unroll_loop(func, the_loop(func))
        verify_function(func)
        unroll_loop(func, the_loop(func))  # 4 copies now
        verify_function(func)
        verify_reachable(func)
        for n in range(10):
            assert execute(func, regs={gpr(8): n}).return_value == 5 * n
