"""Standalone local register-renaming tests."""

from repro.ir import cr, gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.pdg import DepKind, build_block_ddg
from repro.sim import execute
from repro.xform import rename_function


def test_local_web_renamed():
    func = parse_function("""
function f
a:
    LI r1=5
    AI r2=r1,1
    LI r1=9
    AI r3=r1,1
    RET r3
""")
    rename_function(func)
    verify_function(func)
    block = func.block("a")
    # the two LI/AI webs must use distinct registers now
    assert block.instrs[0].defs[0] != block.instrs[2].defs[0]
    assert block.instrs[1].uses[0] == block.instrs[0].defs[0]
    assert block.instrs[3].uses[0] == block.instrs[2].defs[0]
    assert execute(func).return_value == 10


def test_renaming_removes_output_dependences():
    func = parse_function("""
function f
a:
    LI r1=5
    AI r2=r1,1
    LI r1=9
    AI r3=r1,1
""")
    machine = rs6k()
    before = build_block_ddg(func.block("a"), machine, reduce=False)
    n_before = sum(1 for e in before.edges()
                   if e.kind in (DepKind.ANTI, DepKind.OUTPUT))
    rename_function(func)
    after = build_block_ddg(func.block("a"), machine, reduce=False)
    n_after = sum(1 for e in after.edges()
                  if e.kind in (DepKind.ANTI, DepKind.OUTPUT))
    assert n_before > 0 and n_after == 0


def test_live_out_register_not_renamed():
    func = parse_function("""
function f
a:
    LI r1=5
b:
    AI r2=r1,1
    RET r2
""")
    rename_function(func)
    assert func.block("a").instrs[0].defs[0] == gpr(1)


def test_live_out_with_later_def_renames_first_web():
    func = parse_function("""
function f
a:
    LI r1=5
    AI r2=r1,1
    LI r1=9
b:
    AI r3=r1,1
    RET r3
""")
    rename_function(func)
    block = func.block("a")
    assert block.instrs[0].defs[0] != gpr(1)  # first web is cut off
    assert block.instrs[2].defs[0] == gpr(1)  # last web feeds block b
    assert execute(func).return_value == 10


def test_live_at_exit_respected():
    func = parse_function("""
function f
a:
    LI r1=5
""")
    rename_function(func, live_at_exit=frozenset({gpr(1)}))
    assert func.block("a").instrs[0].defs[0] == gpr(1)
    func2 = parse_function("function f\na:\n    LI r1=5\n")
    rename_function(func2)
    assert func2.block("a").instrs[0].defs[0] != gpr(1)


def test_condition_registers_renamed(figure2):
    report = rename_function(figure2)
    verify_function(figure2)
    renamed_regs = {old for (_b, old, _new, _uid) in report.renames}
    assert cr(7) in renamed_regs  # I3/I4's block-local pair
    # branches follow their renamed compares
    bl1 = figure2.block("CL.0")
    cmp_i, branch = bl1.instrs[2], bl1.instrs[3]
    assert branch.uses[0] == cmp_i.defs[0]


def test_figure2_semantics_preserved():
    import random
    from ..conftest import FIGURE2
    rng = random.Random(3)
    data = [rng.randrange(-50, 50) for _ in range(10)]
    mem = {96 + 4 * i: v for i, v in enumerate(data)}

    def run(func):
        res = execute(func, regs={
            gpr(31): 96, gpr(29): 1, gpr(27): 9,
            gpr(28): data[0], gpr(30): data[0],
        }, memory=dict(mem))
        return res.reg(gpr(28)), res.reg(gpr(30))

    plain = parse_function(FIGURE2)
    renamed = parse_function(FIGURE2)
    rename_function(renamed,
                    live_at_exit=frozenset({gpr(28), gpr(30)}))
    assert run(plain) == run(renamed)


def test_use_def_instruction_ends_web():
    # AI r1=r1,2: its use belongs to the old web, its def starts a new one
    func = parse_function("""
function f
a:
    LI r1=5
    AI r1=r1,2
    AI r2=r1,1
    RET r2
""")
    rename_function(func)
    verify_function(func)
    block = func.block("a")
    li, ai_self, ai_out = block.instrs[0], block.instrs[1], block.instrs[2]
    assert ai_self.uses[0] == li.defs[0]
    assert ai_out.uses[0] == ai_self.defs[0]
    assert li.defs[0] != ai_self.defs[0]
    assert execute(func).return_value == 8
