"""Counter-register loop conversion tests (the paper's footnote 3)."""

import pytest

from repro import ScheduleLevel, compile_c, rs6k
from repro.ir import Opcode, gpr, parse_function, verify_function
from repro.sim import execute, simulate_execution
from repro.xform import PipelineConfig, convert_counted_loops


def counted_loop(step=1):
    return parse_function(f"""
function counted
guard:
    LI r1=0
    C  cr0=r1,r8
    BF exit,cr0,0x1/lt
body:
    A  r3=r3,r1
    AI r1=r1,{step}
    C  cr1=r1,r8
    BT body,cr1,0x1/lt
exit:
    RET r3
""")


def run_sum(func, n):
    return execute(func, regs={gpr(8): n}).return_value


class TestConversion:
    def test_counted_loop_converted(self):
        func = counted_loop()
        report = convert_counted_loops(func)
        verify_function(func)
        assert report.converted == ["body"]
        ops = [i.opcode for i in func.instructions()]
        assert Opcode.MTCTR in ops and Opcode.BDNZ in ops
        # the latch compare disappeared
        latch_ops = [i.opcode for i in func.block("body").instrs]
        assert Opcode.C not in latch_ops

    @pytest.mark.parametrize("n", [1, 2, 3, 10])
    @pytest.mark.parametrize("step", [1, 2, 4])
    def test_semantics(self, n, step):
        plain = counted_loop(step)
        converted = counted_loop(step)
        convert_counted_loops(converted)
        assert run_sum(plain, n) == run_sum(converted, n)

    def test_zero_trip_guard_respected(self):
        # n = 0: the guard skips the loop entirely, so the counter is
        # never consulted
        func = counted_loop()
        convert_counted_loops(func)
        assert run_sum(func, 0) == 0
        assert run_sum(func, -5) == 0

    def test_removes_compare_branch_delay(self):
        plain = counted_loop()
        converted = counted_loop()
        convert_counted_loops(converted)
        _, t_plain = simulate_execution(plain, rs6k(), regs={gpr(8): 30})
        _, t_conv = simulate_execution(converted, rs6k(), regs={gpr(8): 30})
        assert t_conv.cycles < t_plain.cycles


class TestSafetyConditions:
    def test_unguarded_entry_rejected(self):
        func = parse_function("""
function unguarded
pre:
    LI r1=0
body:
    A  r3=r3,r1
    AI r1=r1,1
    C  cr1=r1,r8
    BT body,cr1,0x1/lt
""")
        assert not convert_counted_loops(func)

    def test_call_in_loop_rejected(self):
        func = counted_loop()
        body = func.block("body")
        from repro.ir import Instruction
        call = Instruction(Opcode.CALL, target="f")
        func.assign_uid(call)
        body.instrs.insert(0, call)
        assert not convert_counted_loops(func)

    def test_cr_used_elsewhere_rejected(self):
        func = parse_function("""
function crused
guard:
    LI r1=0
    C  cr0=r1,r8
    BF exit,cr0,0x1/lt
body:
    AI r1=r1,1
    C  cr1=r1,r8
    LR r5=r1
    BT body,cr1,0x1/lt
mid:
    BT body,cr1,0x1/lt
exit:
    RET r3
""")
        assert not convert_counted_loops(func)

    def test_variant_bound_rejected(self):
        func = parse_function("""
function varbound
guard:
    LI r1=0
    C  cr0=r1,r8
    BF exit,cr0,0x1/lt
body:
    AI r8=r8,1
    AI r1=r1,2
    C  cr1=r1,r8
    BT body,cr1,0x1/lt
exit:
    RET r3
""")
        assert not convert_counted_loops(func)

    def test_odd_step_rejected(self):
        func = counted_loop(step=3)
        assert not convert_counted_loops(func)


class TestPipelineIntegration:
    SRC = """
int total(int a[], int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s = s + a[i]; i = i + 1; }
    return s;
}
"""

    def test_opt_in_via_config(self):
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                use_counter_register=True)
        result = compile_c(self.SRC, level=ScheduleLevel.SPECULATIVE,
                           config=config)
        unit = result["total"]
        assert unit.report.ctr and unit.report.ctr.converted
        data = list(range(10))
        assert unit.run(data, 10).return_value == sum(data)

    def test_default_is_off_like_the_paper(self):
        result = compile_c(self.SRC, level=ScheduleLevel.SPECULATIVE)
        ops = [i.opcode for i in result["total"].func.instructions()]
        assert Opcode.BDNZ not in ops

    def test_ctr_beats_plain_loop_control(self):
        cycles = {}
        for use_ctr in (False, True):
            config = PipelineConfig(level=ScheduleLevel.NONE,
                                    use_counter_register=use_ctr)
            result = compile_c(self.SRC, level=ScheduleLevel.NONE,
                               config=config)
            run = result["total"].run(list(range(50)), 50)
            assert run.return_value == sum(range(50))
            cycles[use_ctr] = run.cycles
        assert cycles[True] < cycles[False]
