"""Tests for the Section 6 compilation flow."""

import pytest

from repro.ir import gpr, verify_function, verify_reachable
from repro.machine import rs6k
from repro.sched import ScheduleLevel
from repro.sim import execute, simulate_execution
from repro.xform import PipelineConfig, optimize

from .test_rotate import run_sum, two_block_loop


class TestGeneralFlow:
    def test_unroll_then_rotate_then_schedule(self):
        func = two_block_loop()
        report = optimize(func, rs6k(),
                          PipelineConfig(level=ScheduleLevel.SPECULATIVE),
                          live_at_exit=frozenset({gpr(3)}))
        verify_function(func)
        verify_reachable(func)
        assert len(report.unrolled) == 1
        assert len(report.rotated) == 1
        assert report.first_pass is not None
        assert report.second_pass is not None
        assert report.bb_cycles  # post-pass ran

    @pytest.mark.parametrize("level", list(ScheduleLevel))
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8])
    def test_semantics_at_every_level(self, level, n):
        func = two_block_loop()
        optimize(func, rs6k(), PipelineConfig(level=level),
                 live_at_exit=frozenset({gpr(3)}))
        assert run_sum(func, n) == n * (n + 1) // 2

    def test_each_level_at_least_as_fast(self):
        cycles = {}
        for level in (ScheduleLevel.NONE, ScheduleLevel.USEFUL,
                      ScheduleLevel.SPECULATIVE):
            func = two_block_loop()
            optimize(func, rs6k(), PipelineConfig(level=level),
                     live_at_exit=frozenset({gpr(3)}))
            mem = {1000 + 4 * i: i for i in range(32)}
            _, timing = simulate_execution(
                func, rs6k(), regs={gpr(5): 32, gpr(6): 1000}, memory=mem)
            cycles[level] = timing.cycles
        assert cycles[ScheduleLevel.USEFUL] <= cycles[ScheduleLevel.NONE]
        assert (cycles[ScheduleLevel.SPECULATIVE]
                <= cycles[ScheduleLevel.USEFUL])

    def test_second_pass_pipelines_rotated_loop(self):
        # the rotated header copy should lose instructions to earlier
        # blocks (the partial software pipelining of Section 6)
        func = two_block_loop()
        report = optimize(func, rs6k(),
                          PipelineConfig(level=ScheduleLevel.SPECULATIVE),
                          live_at_exit=frozenset({gpr(3)}))
        clone_label = report.rotated[0].clone_header
        second = report.second_pass
        pipelined = [m for m in second.motions if m.src == clone_label]
        assert pipelined, "no next-iteration instruction was hoisted"

    def test_base_level_still_runs_bb_scheduler(self):
        func = two_block_loop()
        report = optimize(func, rs6k(),
                          PipelineConfig(level=ScheduleLevel.NONE))
        assert report.bb_cycles
        assert report.first_pass is None
        verify_function(func)


class TestConfigKnobs:
    def test_unroll_disabled(self):
        func = two_block_loop()
        report = optimize(func, rs6k(), PipelineConfig(
            level=ScheduleLevel.USEFUL, unroll_max_blocks=0))
        assert report.unrolled == []

    def test_rotate_disabled(self):
        func = two_block_loop()
        report = optimize(func, rs6k(), PipelineConfig(
            level=ScheduleLevel.USEFUL, rotate_max_blocks=0))
        assert report.rotated == []

    def test_post_pass_disabled(self):
        func = two_block_loop()
        report = optimize(func, rs6k(), PipelineConfig(
            level=ScheduleLevel.USEFUL, post_bb_pass=False))
        assert report.bb_cycles == {}

    def test_rename_ahead(self):
        func = two_block_loop()
        report = optimize(func, rs6k(), PipelineConfig(
            level=ScheduleLevel.USEFUL, rename_ahead=True),
            live_at_exit=frozenset({gpr(3)}))
        assert report.rename is not None and len(report.rename) > 0
        assert run_sum(func, 5) == 15

    def test_size_limits_skip_large_regions(self, figure2):
        import repro.sched.regions as regions_mod
        report = optimize(
            figure2, rs6k(),
            PipelineConfig(level=ScheduleLevel.USEFUL,
                           unroll_max_blocks=0, rotate_max_blocks=0,
                           apply_size_limits=True))
        # minmax has 10 blocks / 20 instrs: small enough, so it runs
        assert report.first_pass.regions
        # shrink the limit artificially
        old = regions_mod.MAX_REGION_BLOCKS
        try:
            regions_mod.MAX_REGION_BLOCKS = 2
            from ..conftest import FIGURE2
            from repro.ir import parse_function
            func = parse_function(FIGURE2)
            report = optimize(
                func, rs6k(),
                PipelineConfig(level=ScheduleLevel.USEFUL,
                               unroll_max_blocks=0, rotate_max_blocks=0))
            assert any("CL.0" in s for s in report.first_pass.skipped_regions)
        finally:
            regions_mod.MAX_REGION_BLOCKS = old

    def test_elapsed_recorded(self):
        func = two_block_loop()
        report = optimize(func, rs6k(),
                          PipelineConfig(level=ScheduleLevel.SPECULATIVE))
        assert report.elapsed_seconds > 0
