"""CFG simplification tests."""

from repro.ir import gpr, parse_function, verify_function, verify_reachable
from repro.sim import execute
from repro.xform import simplify_cfg


def test_jump_threading():
    func = parse_function("""
function t
a:
    C cr0=r1,r2
    BT hop,cr0,0x1/lt
direct:
    LI r3=1
    RET r3
hop:
    B target
target:
    LI r3=2
    RET r3
""")
    report = simplify_cfg(func)
    verify_function(func)
    assert func.block("a").terminator.target == "target"
    assert not func.has_block("hop")
    assert report.threaded >= 1 and report.removed_blocks >= 1


def test_fold_jump_to_fallthrough():
    func = parse_function("""
function t
a:
    LI r1=1
    B b
b:
    RET r1
""")
    simplify_cfg(func)
    verify_function(func)
    # the B disappeared and the chain merged into one block
    assert len(func.blocks) == 1
    assert [i.opcode.mnemonic for i in func.blocks[0].instrs] == ["LI", "RET"]


def test_empty_block_threading():
    func = parse_function("""
function t
a:
    C cr0=r1,r2
    BT empty,cr0,0x1/lt
other:
    RET r1
empty:
after:
    RET r2
""")
    simplify_cfg(func)
    verify_function(func)
    assert func.block("a").terminator.target == "after"


def test_unreachable_removed():
    func = parse_function("""
function t
a:
    RET r1
island:
    LI r2=1
    RET r2
""")
    simplify_cfg(func)
    verify_reachable(func)
    assert not func.has_block("island")


def test_merge_respects_multiple_preds(figure2):
    before = len(figure2.blocks)
    simplify_cfg(figure2)
    # Figure 2 is already clean: nothing to simplify
    assert len(figure2.blocks) == before


def test_semantics_preserved():
    func = parse_function("""
function t
a:
    C cr0=r1,r2
    BT x,cr0,0x1/lt
b:
    LI r3=10
    B join
x:
    B y
y:
    LI r3=20
join:
    AI r3=r3,1
    RET r3
""")
    results_before = [
        execute(parse_function("""
function t
a:
    C cr0=r1,r2
    BT x,cr0,0x1/lt
b:
    LI r3=10
    B join
x:
    B y
y:
    LI r3=20
join:
    AI r3=r3,1
    RET r3
"""), regs={gpr(1): a, gpr(2): b}).return_value
        for a, b in ((0, 1), (1, 0))
    ]
    simplify_cfg(func)
    verify_function(func)
    results_after = [
        execute(func, regs={gpr(1): a, gpr(2): b}).return_value
        for a, b in ((0, 1), (1, 0))
    ]
    assert results_before == results_after == [21, 11]


def test_fixed_point_terminates():
    # a chain of 10 trivial jumps collapses fully
    lines = ["function t"]
    for i in range(10):
        lines.append(f"b{i}:")
        lines.append(f"    B b{i+1}")
    lines.append("b10:")
    lines.append("    RET r1")
    func = parse_function("\n".join(lines))
    simplify_cfg(func)
    verify_function(func)
    assert len(func.blocks) == 1
