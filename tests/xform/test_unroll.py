"""Loop-unrolling tests (Section 6, step 1)."""

import pytest

from repro.cfg import ControlFlowGraph, ENTRY, LoopNest, dominator_tree
from repro.ir import (
    Builder,
    CR_LT,
    Function,
    gpr,
    cr,
    parse_function,
    verify_function,
    verify_reachable,
)
from repro.sim import execute
from repro.xform import (
    TransformError,
    loop_blocks_in_layout,
    unroll_loop,
    unrollable_inner_loops,
)


def sum_loop():
    """sum += a[i] for i in 0..n-1, bottom-tested, 1-block body."""
    f = Function("sum")
    b = Builder(f)
    r_sum, r_i, r_n, r_base, r_t, c0 = (gpr(3), gpr(4), gpr(5), gpr(6),
                                        gpr(7), cr(0))
    b.start_block("init")
    b.li(r_sum, 0)
    b.li(r_i, 0)
    b.cmp(c0, r_i, r_n)
    b.bf("done", c0, CR_LT)
    b.start_block("body")
    b.load(r_t, r_base, 0, symbol="a")
    b.add(r_sum, r_sum, r_t)
    b.ai(r_base, r_base, 4)
    b.ai(r_i, r_i, 1)
    b.cmp(c0, r_i, r_n)
    b.bt("body", c0, CR_LT)
    b.start_block("done")
    b.ret(r_sum)
    verify_function(f)
    return f


def run_sum(func, n):
    mem = {1000 + 4 * i: i + 1 for i in range(n)}
    res = execute(func, regs={gpr(5): n, gpr(6): 1000}, memory=mem)
    return res.return_value


def the_loop(func):
    cfg = ControlFlowGraph(func)
    dom = dominator_tree(cfg.graph, ENTRY)
    return LoopNest(cfg.graph, dom).loops[0]


class TestUnrollSemantics:
    @pytest.mark.parametrize("n", range(0, 9))
    def test_any_trip_count(self, n):
        func = sum_loop()
        unroll_loop(func, the_loop(func))
        verify_function(func)
        verify_reachable(func)
        assert run_sum(func, n) == n * (n + 1) // 2

    def test_unrolled_loop_has_two_copies(self):
        func = sum_loop()
        report = unroll_loop(func, the_loop(func))
        assert report.header == "body"
        assert len(report.cloned_blocks) == 1
        loop2 = the_loop(func)
        assert len(loop2.body) == 2  # body + clone

    def test_multi_block_loop(self, figure2):
        # minmax loop: too big for policy, but mechanically unrollable
        loop = the_loop(figure2)
        report = unroll_loop(figure2, loop)
        verify_function(figure2)
        verify_reachable(figure2)
        body = the_loop(figure2).body
        assert {"CL.0", report.clone_header} <= body
        assert len(body) == 20

    def test_latch_inverted_keeps_layout_contiguous(self):
        func = sum_loop()
        unroll_loop(func, the_loop(func))
        # after inversion-based unrolling, the new loop is contiguous,
        # which is what lets rotation run afterwards
        loop_blocks_in_layout(func, the_loop(func))


class TestPolicy:
    def test_small_inner_loops_selected(self, figure2):
        func = sum_loop()
        chosen = unrollable_inner_loops(func, [the_loop(func)])
        assert len(chosen) == 1
        # the 10-block minmax loop exceeds the 4-block limit
        assert unrollable_inner_loops(figure2, [the_loop(figure2)]) == []

    def test_nested_loops_excluded(self):
        func = parse_function("""
function nest
outer:
    AI r1=r1,1
inner:
    AI r2=r2,1
innerL:
    C cr0=r2,r9
    BT inner,cr0,0x1/lt
outerL:
    C cr1=r1,r8
    BT outer,cr1,0x1/lt
""")
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        loops = LoopNest(cfg.graph, dom).loops
        chosen = unrollable_inner_loops(func, loops)
        assert [l.header for l in chosen] == ["inner"]

    def test_non_contiguous_loop_rejected(self):
        func = parse_function("""
function nc
head:
    C cr0=r1,r2
    BT tail,cr0,0x1/lt
middle:
    RET r1
tail:
    AI r1=r1,1
    B head
""")
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        loop = LoopNest(cfg.graph, dom).loops[0]
        with pytest.raises(TransformError, match="contiguous"):
            loop_blocks_in_layout(func, loop)
        assert unrollable_inner_loops(func, [loop]) == []
