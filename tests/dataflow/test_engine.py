"""Generic worklist-solver tests."""

from repro.cfg import Digraph
from repro.dataflow import solve_backward, solve_forward


def chain(n):
    g = Digraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def test_forward_propagates_from_entry():
    g = chain(4)
    # transfer: add the node's own id
    result = solve_forward(
        g, range(4),
        lambda node, in_set: in_set | {node},
        entry=0, boundary=frozenset({"seed"}),
    )
    assert result[0] == frozenset({"seed"})
    assert result[3] == frozenset({"seed", 0, 1, 2})


def test_backward_propagates_from_exits():
    g = chain(4)
    result = solve_backward(
        g, range(4),
        lambda node, out_set: out_set | {node},
        boundary=frozenset({"exitval"}),
    )
    # out of the last node is the boundary; earlier nodes accumulate
    assert result[3] == frozenset({"exitval"})
    assert result[0] == frozenset({"exitval", 1, 2, 3})


def test_backward_meet_is_union():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    result = solve_backward(
        g, ["a", "b", "c"],
        lambda node, out_set: out_set | {node},
        boundary=frozenset(),
    )
    assert result["a"] == frozenset({"b", "c"})


def test_fixed_point_on_cycle():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    g.add_edge("b", "x")
    # gen "t" at x; kill nothing: t must flow around the cycle
    def transfer(node, out_set):
        return out_set | ({"t"} if node == "x" else set())

    result = solve_backward(g, ["a", "b", "x"], transfer)
    assert "t" in result["a"] and "t" in result["b"]


def test_unreachable_nodes_stay_empty():
    g = chain(3)
    g.add_node("island")
    result = solve_forward(
        g, [0, 1, 2, "island"],
        lambda node, in_set: in_set | {node},
        entry=0, boundary=frozenset({"s"}),
    )
    assert result["island"] == frozenset()
