"""Reaching-definitions tests."""

from repro.dataflow import Definition, ReachingDefinitions
from repro.ir import gpr, cr, parse_function


def test_figure2_reaching(figure2):
    rd = ReachingDefinitions(figure2)
    # r30 (max) definitions: I7 (BL3) and I14 (BL7); both may reach BL10
    reaching = rd.reaching_in("CL.9")
    r30_defs = {d.uid for d in reaching if d.reg == gpr(30)}
    assert r30_defs == {7, 14}
    # inside the loop, r12's only def is I1
    r12_defs = {d.uid for d in reaching if d.reg == gpr(12)}
    assert r12_defs == {1}


def test_kill_within_block(figure2):
    rd = ReachingDefinitions(figure2)
    # cr7 defined by I3 (BL1), I8 (BL4), I15 (BL8); at entry of CL.9 all
    # three may reach (no later kill), at entry of CL.6 only I3
    cl6 = {d.uid for d in rd.reaching_in("CL.6") if d.reg == cr(7)}
    assert cl6 == {3}


def test_reaching_before_instruction(figure2):
    rd = ReachingDefinitions(figure2)
    block = figure2.block("CL.9")
    i19 = block.instrs[1]
    before = rd.reaching_before("CL.9", i19)
    r29_defs = {d.uid for d in before if d.reg == gpr(29)}
    assert r29_defs == {18}  # I18's def of r29 killed everything else


def test_defs_of(figure2):
    rd = ReachingDefinitions(figure2)
    assert {d.uid for d in rd.defs_of(gpr(28))} == {10, 17}
    assert rd.defs_of(gpr(99)) == frozenset()


def test_loop_carried_definitions(figure2):
    rd = ReachingDefinitions(figure2)
    # the back edge carries I18's def of r29 to the loop header
    header = {d.uid for d in rd.reaching_in("CL.0") if d.reg == gpr(29)}
    assert 18 in header


def test_straight_line():
    func = parse_function("""
function s
a:
    LI r1=1
    LI r1=2
b:
    LR r2=r1
""")
    rd = ReachingDefinitions(func)
    in_b = {d.uid for d in rd.reaching_in("b") if d.reg == gpr(1)}
    assert in_b == {2}  # the first LI is killed within block a
