"""AnalysisCache: memoisation identity and the two invalidation tiers."""

from repro.dataflow.cache import AnalysisCache
from repro.ir import parse_function
from repro.ir.operand import Reg, RegClass

SOURCE = """
function f
entry:
    LI r1=0
    LI r2=10
loop:
    AI r1=r1,1
    C  cr0=r1,r2
    BT loop,cr0,0x1/lt
exit:
    RET r1
"""


def make_cache():
    func = parse_function(SOURCE)
    return func, AnalysisCache(func)


def gpr(n: int) -> Reg:
    return Reg(RegClass.GPR, n)


class TestMemoisation:
    def test_same_object_until_invalidated(self):
        _func, cache = make_cache()
        assert cache.cfg() is cache.cfg()
        assert cache.dominators() is cache.dominators()
        assert cache.loop_nest() is cache.loop_nest()

    def test_liveness_memoised_per_exit_set(self):
        _func, cache = make_cache()
        empty = frozenset()
        one = frozenset({gpr(1)})
        assert cache.liveness(empty) is cache.liveness(empty)
        assert cache.liveness(one) is cache.liveness(one)
        assert cache.liveness(empty) is not cache.liveness(one)

    def test_derived_analyses_share_the_cfg(self):
        _func, cache = make_cache()
        cfg = cache.cfg()
        cache.dominators()
        cache.loop_nest()
        assert cache.cfg() is cfg  # building dom/nest did not rebuild it


class TestFullInvalidation:
    def test_invalidate_drops_everything(self):
        _func, cache = make_cache()
        cfg = cache.cfg()
        dom = cache.dominators()
        nest = cache.loop_nest()
        live = cache.liveness(frozenset())
        cache.invalidate()
        assert cache.cfg() is not cfg
        assert cache.dominators() is not dom
        assert cache.loop_nest() is not nest
        assert cache.liveness(frozenset()) is not live

    def test_fresh_analyses_reflect_cfg_mutation(self):
        func, cache = make_cache()
        assert len(cache.loop_nest().loops) == 1
        # rewrite the back edge into a fall-through: the loop disappears
        loop = func.block("loop")
        bt = loop.instrs[-1]
        loop.instrs.remove(bt)
        cache.invalidate()
        assert len(cache.loop_nest().loops) == 0


class TestLivenessInvalidation:
    def test_keeps_cfg_shape_drops_dataflow(self):
        func, cache = make_cache()
        cfg = cache.cfg()
        dom = cache.dominators()
        nest = cache.loop_nest()
        live = cache.liveness(frozenset({gpr(1)}))
        cache.invalidate_liveness()
        assert cache.cfg() is cfg
        assert cache.dominators() is dom
        assert cache.loop_nest() is nest
        assert cache.liveness(frozenset({gpr(1)})) is not live

    def test_fresh_liveness_reflects_instruction_change(self):
        func, cache = make_cache()
        exit_live = frozenset()
        entry = func.block("entry")
        # r1 is defined by entry's LI before any use: not live-in
        assert gpr(1) not in cache.liveness(exit_live).live_in(entry.label)
        # drop the def: the loop's use of r1 now reaches entry
        entry.instrs.remove(entry.instrs[0])
        cache.invalidate_liveness()
        assert gpr(1) in cache.liveness(exit_live).live_in(entry.label)

    def test_stale_cache_contract(self):
        """The documented hazard: mutate without invalidating and the old
        facts keep being served.  This is the failure mode the pipeline's
        explicit invalidate calls exist to prevent."""
        func, cache = make_cache()
        nest = cache.loop_nest()
        loop = func.block("loop")
        loop.instrs.remove(loop.instrs[-1])  # CFG changed underneath
        assert cache.loop_nest() is nest     # ...but the cache can't know
        cache.invalidate()
        assert len(cache.loop_nest().loops) == 0
