"""The dense analysis core must be indistinguishable from the seed.

PR contract for the bitset/CSR rewrite: dominators, reducibility, the
loop nest, liveness, reaching definitions and interference re-hosted on
int indices and bitmasks (:mod:`repro.cfg.dominators`,
:mod:`repro.cfg.loops`, :mod:`repro.dataflow`, :mod:`repro.regalloc`)
agree *exactly* with the preserved seed implementations
(:mod:`repro.cfg.reference`, :mod:`repro.dataflow.reference`,
:mod:`repro.regalloc.reference`) -- on random digraphs (irreducible
graphs and unreachable nodes included), on lowered mini-C functions, on
hand-written irreducible/unreachable IR, and byte-for-byte on emitted
assembly across machines x scheduling levels with the whole core
switched off via :func:`repro.dataflow.reference.reference_analyses`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.digraph import Digraph
from repro.cfg.dominators import dominator_tree
from repro.cfg.graph import ENTRY, ControlFlowGraph
from repro.cfg.loops import LoopNest, is_reducible
from repro.cfg.reference import (
    DominatorTreeReference,
    LoopNestReference,
    is_reducible_reference,
)
from repro.compiler import compile_c
from repro.dataflow.liveness import compute_liveness
from repro.dataflow.reaching import ReachingDefinitions
from repro.dataflow.reference import (
    ReachingDefinitionsReference,
    compute_liveness_reference,
    reference_analyses,
)
from repro.ir.parser import parse_function
from repro.lang.lower import compile_c_functions
from repro.machine.configs import CONFIGS
from repro.regalloc.interference import build_interference
from repro.regalloc.reference import build_interference_reference
from repro.sched.candidates import ScheduleLevel
from repro.verify.fuzz import derive_seed
from repro.verify.generator import generate_program

# -- random digraphs: dominators / reducibility / loop nest ----------------


@st.composite
def random_digraph(draw):
    """A rooted digraph: random edges over a small node set, so the
    strategy routinely produces irreducible loops, self loops and
    forward-unreachable nodes."""
    n = draw(st.integers(1, 10))
    graph = Digraph()
    for v in range(n):
        graph.add_node(v)
    pairs = [(u, v) for u in range(n) for v in range(n)]
    for u, v in draw(st.lists(st.sampled_from(pairs), max_size=3 * n,
                              unique=True)):
        graph.add_edge(u, v)
    return graph


def _nest_signature(nest):
    sig = []
    for loop in nest.loops:
        sig.append((loop.header, frozenset(loop.body), tuple(loop.latches),
                    loop.parent.header if loop.parent is not None else None))
    return sig


def assert_cfg_analyses_agree(graph: Digraph, root) -> None:
    dense = dominator_tree(graph, root)
    ref = DominatorTreeReference(graph, root)
    assert dense.nodes == ref.nodes
    for v in dense.nodes:
        assert dense.idom(v) == ref.idom(v), v
        assert dense.depth(v) == ref.depth(v), v
        assert dense.children(v) == ref.children(v), v
        assert dense.dominators_of(v) == ref.dominators_of(v), v
    for a in graph.nodes:
        for b in graph.nodes:
            assert dense.dominates(a, b) == ref.dominates(a, b), (a, b)
            assert (dense.strictly_dominates(a, b)
                    == ref.strictly_dominates(a, b)), (a, b)
    assert (is_reducible(graph, dense)
            == is_reducible_reference(graph, ref))
    nest = LoopNest(graph, dense)
    nest_ref = LoopNestReference(graph, ref)
    assert _nest_signature(nest) == _nest_signature(nest_ref)
    for v in graph.nodes:
        mine = nest.innermost_containing(v)
        theirs = nest_ref.innermost_containing(v)
        assert (mine.header if mine else None) == \
            (theirs.header if theirs else None), v
    assert ([l.header for l in nest.loops_innermost_first()]
            == [l.header for l in nest_ref.loops_innermost_first()])


@given(random_digraph())
@settings(max_examples=200, deadline=None)
def test_random_digraphs_agree(graph):
    assert_cfg_analyses_agree(graph, 0)


def test_irreducible_triangle_agrees():
    graph = Digraph()
    for v in range(3):
        graph.add_node(v)
    for u, v in [(0, 1), (0, 2), (1, 2), (2, 1)]:
        graph.add_edge(u, v)
    dense = dominator_tree(graph, 0)
    assert not is_reducible(graph, dense)
    assert_cfg_analyses_agree(graph, 0)


def test_unreachable_pred_into_loop_agrees():
    """The seed's natural-loop walk traverses forward-unreachable
    predecessors and clamps afterwards; the dense walk must match."""
    graph = Digraph()
    for v in (0, 1, 2, 9, 10):
        graph.add_node(v)
    for u, v in [(0, 1), (1, 2), (2, 1), (9, 10), (10, 2), (10, 9)]:
        graph.add_edge(u, v)
    assert_cfg_analyses_agree(graph, 0)


def test_self_loop_agrees():
    graph = Digraph()
    for v in (0, 1, 2):
        graph.add_node(v)
    for u, v in [(0, 1), (1, 1), (1, 2)]:
        graph.add_edge(u, v)
    assert_cfg_analyses_agree(graph, 0)


# -- lowered functions: liveness / reaching / interference ----------------

MINMAX = (
    "int minmax(int a[], int n, int out[]) {\n"
    "    int min = a[0]; int max = min; int i = 1;\n"
    "    while (i < n) {\n"
    "        int u = a[i]; int v = a[i+1];\n"
    "        if (u > v) { if (u > max) max = u; if (v < min) min = v; }\n"
    "        else       { if (v > max) max = v; if (u < min) min = u; }\n"
    "        i = i + 2;\n"
    "    }\n"
    "    out[0] = min; out[1] = max; return 0;\n"
    "}\n"
)

NESTED = (
    "int f(int a[], int x, int y) {\n"
    "    int s = 0;\n"
    "    for (int i = 0; i < 4; i++) {\n"
    "        int t = a[i];\n"
    "        for (int j = 0; j < 3; j++) { s = s + t; }\n"
    "        s = s ^ i;\n"
    "    }\n"
    "    return s;\n"
    "}\n"
)

#: hand-written IR with an irreducible two-entry loop (CL.1 <-> CL.2,
#: entered at both headers) -- the front end cannot emit this shape
IRREDUCIBLE_IR = """
function irreducible
CL.0:
    (I1) C    cr0=r1,r2
    (I2) BT   CL.2,cr0,0x1/lt
CL.1:
    (I3) AI   r1=r1,1
    (I4) C    cr1=r1,r2
    (I5) BT   CL.2,cr1,0x1/lt
CL.2:
    (I6) AI   r1=r1,2
    (I7) C    cr2=r1,r2
    (I8) BT   CL.1,cr2,0x2/gt
"""

#: CL.9 is forward-unreachable but still has solved dataflow facts
UNREACHABLE_IR = """
function unreachable
CL.0:
    (I1) LI   r3=1
    (I2) B    CL.2
CL.9:
    (I3) AI   r3=r4,7
    (I4) B    CL.2
CL.2:
    (I5) AI   r3=r3,1
"""


def _analysis_functions():
    out = []
    for source in (MINMAX, NESTED):
        for cf in compile_c_functions(source).values():
            out.append((cf.func, cf.live_at_exit))
    for index in (0, 3, 7):
        program = generate_program(derive_seed(0xA5EED, index))
        for cf in compile_c_functions(program.source).values():
            out.append((cf.func, cf.live_at_exit))
    for text in (IRREDUCIBLE_IR, UNREACHABLE_IR):
        out.append((parse_function(text), frozenset()))
    return out


@pytest.mark.parametrize("func,live_at_exit", _analysis_functions(),
                         ids=lambda v: getattr(v, "name", None) or "exit")
def test_liveness_and_reaching_agree(func, live_at_exit):
    cfg = ControlFlowGraph(func)
    dense = compute_liveness(func, live_at_exit, cfg)
    ref = compute_liveness_reference(func, live_at_exit, cfg)
    for block in func.blocks:
        assert dense.live_out(block) == ref.live_out(block), block.label
        assert dense.live_in(block) == ref.live_in(block), block.label
    assert dense.live_out_map() == ref.live_out_map()

    rd = ReachingDefinitions(func, cfg)
    rd_ref = ReachingDefinitionsReference(func, cfg)
    regs = {r for b in func.blocks for i in b.instrs for r in i.reg_defs()}
    for reg in regs:
        assert rd.defs_of(reg) == rd_ref.defs_of(reg), reg
    for block in func.blocks:
        assert (rd.reaching_in(block.label)
                == rd_ref.reaching_in(block.label)), block.label
        for ins in block.instrs:
            assert (rd.reaching_before(block.label, ins)
                    == rd_ref.reaching_before(block.label, ins)), ins


@pytest.mark.parametrize("func,live_at_exit", _analysis_functions(),
                         ids=lambda v: getattr(v, "name", None) or "exit")
def test_interference_agrees(func, live_at_exit):
    dense = build_interference(func, live_at_exit=live_at_exit)
    ref = build_interference_reference(func, live_at_exit=live_at_exit)
    assert dense.adjacency == ref.adjacency
    assert dense.moves == ref.moves


def test_dense_dominators_on_function_cfgs():
    for func, _ in _analysis_functions():
        cfg = ControlFlowGraph(func)
        assert_cfg_analyses_agree(cfg.graph, ENTRY)


# -- end to end: byte-identical assembly ----------------------------------


def _assembly(source, level, machine):
    result = compile_c(source, machine=CONFIGS[machine](), level=level)
    return "\n\n".join(unit.assembly() for unit in result)


def assert_assembly_identical(source, level, machine):
    dense_arm = _assembly(source, level, machine)
    with reference_analyses():
        reference_arm = _assembly(source, level, machine)
    assert dense_arm == reference_arm, (level, machine)


@pytest.mark.parametrize("machine", sorted(CONFIGS))
@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_minmax_assembly_identical_everywhere(level, machine):
    assert_assembly_identical(MINMAX, level, machine)


@pytest.mark.parametrize("index", [0, 3, 7, 13])
def test_corpus_assembly_identical(index):
    program = generate_program(derive_seed(0xA5EED, index))
    assert_assembly_identical(program.source, ScheduleLevel.SPECULATIVE,
                              "rs6k")
