"""Liveness (live-on-exit) tests, anchored to the paper's Section 5.3."""

from repro.cfg import ControlFlowGraph
from repro.dataflow import block_use_def, compute_liveness
from repro.ir import cr, gpr, parse_function


class TestFigure2Liveness:
    def test_max_live_out_of_bl1(self, figure2):
        # r30 (max) is live on exit of BL1: the path through BL2 may reach
        # I12's use... actually through CL.4's I12 use without a kill.
        live = compute_liveness(figure2, frozenset({gpr(28), gpr(30)}))
        assert gpr(30) in live.live_out("CL.0")
        assert gpr(28) in live.live_out("CL.0")

    def test_cr6_dead_on_exit_of_bl1(self, figure2):
        # both uses of cr6 (I6, I13) are preceded by defs in their own
        # blocks, so moving a cr6 definition into BL1 is legal -- exactly
        # why I5 may move speculatively in Figure 6
        live = compute_liveness(figure2)
        assert cr(6) not in live.live_out("CL.0")
        assert cr(7) not in live.live_out("CL.0")

    def test_r30_live_out_of_bl2(self, figure2):
        # moving I7 (max=u) into BL2 would clobber max on the path where
        # u <= max: r30 must be live on exit of BL2
        live = compute_liveness(figure2, frozenset({gpr(30)}))
        assert gpr(30) in live.live_out("BL2")

    def test_loaded_values_live_across_branches(self, figure2):
        live = compute_liveness(figure2)
        # u (r12) is used in BL2, CL.11, BL9
        assert gpr(12) in live.live_out("CL.0")
        assert gpr(12) in live.live_in("CL.11")

    def test_live_at_exit_propagates_to_loop(self, figure2):
        live_with = compute_liveness(figure2, frozenset({gpr(27)}))
        live_without = compute_liveness(figure2)
        assert gpr(27) in live_with.live_out("BL5")
        # r27 (n) is used by I19 so it is live anyway
        assert gpr(27) in live_without.live_out("BL5")

    def test_dead_register_nowhere_live(self, figure2):
        live = compute_liveness(figure2)
        assert all(gpr(99) not in live.live_out(b.label)
                   for b in figure2.blocks)


class TestSection53Example:
    """The x=5 / x=3 example of Section 5.3."""

    def make(self):
        # B1: test; B2: x=5; B3: x=3; B4: print(x)
        return parse_function("""
function xexample
B1:
    C cr0=r1,r2
    BF B3,cr0,0x1/lt
B2:
    LI r10=5
    B B4
B3:
    LI r10=3
B4:
    CALL print(r10)
    RET
""")

    def test_x_not_live_out_of_b1(self):
        # both paths define x before its use: each motion *individually*
        # looks legal, which is why dynamic updating is needed
        func = self.make()
        live = compute_liveness(func)
        assert gpr(10) not in live.live_out("B1")

    def test_x_live_out_of_arms(self):
        func = self.make()
        live = compute_liveness(func)
        assert gpr(10) in live.live_out("B2")
        assert gpr(10) in live.live_out("B3")


class TestBlockUseDef:
    def test_upward_exposed_uses_only(self, figure2):
        uses, defs = block_use_def(figure2.block("CL.9"))
        assert gpr(29) in uses       # AI reads r29 before defining it
        assert gpr(29) in defs
        assert cr(4) in defs
        assert cr(4) not in uses     # defined before the BT uses it

    def test_empty_block(self):
        from repro.ir import BasicBlock
        uses, defs = block_use_def(BasicBlock("x"))
        assert uses == set() and defs == set()


def test_live_out_map_is_mutable_copy(figure2):
    live = compute_liveness(figure2)
    m = live.live_out_map()
    m["CL.0"].add(gpr(77))
    assert gpr(77) not in live.live_out("CL.0")
