function minmax
entry.0:
    (I3)    LI    r5=1
    (I4)    C     cr0=r5,r1
    (I1)    L     r3=a(r0,0)
    (I41)   SL    r15=r5,2                           ; strength-reduce init
    (I39)   LI    r13=0
    (I2)    LR    r4=r3
    (I42)   A     r14=r0,r15                         ; strength-reduce init
    (I5)    BF    LX.3,cr0,0x1/lt
LH.1:
    (I8)    L     r6=a(r14,0)
    (I12)   L     r9=a(r14,4)
    (I33)   AI    r5=r5,2
    (I13)   C     cr1=r6,r9
    (I35)   C     cr6=r5,r1
    (I43)   AI    r14=r14,8                          ; strength-reduce step
    (I15)   C     cr2=r6,r4
    (I14)   BF    L.6,cr1,0x2/gt
L.4:
    (I19)   C     cr3=r9,r3
    (I16)   BF    L.8,cr2,0x2/gt
L.7:
    (I17)   LR    r4=r6
L.8:
    (I20)   BF    L.5,cr3,0x1/lt
L.9:
    (I21)   LR    r3=r9
    (I22)   B     L.5
L.6:
    (I24)   C     cr4=r9,r4
    (I28)   C     cr5=r6,r3
    (I25)   BF    L.12,cr4,0x2/gt
L.11:
    (I26)   LR    r4=r9
L.12:
    (I29)   BF    L.5,cr5,0x1/lt
L.13:
    (I30)   LR    r3=r6
L.5:
    (I36)   BT    LH.1,cr6,0x1/lt
LX.3:
    (I37)   ST    r3=>out(r2,0)
    (I38)   ST    r4=>out(r2,4)
    (I40)   RET   r13

