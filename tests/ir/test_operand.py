"""Tests for registers, condition bits, and memory references."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import (
    CR_EQ,
    CR_GT,
    CR_LT,
    CTR,
    MemRef,
    Reg,
    RegClass,
    cr,
    fpr,
    gpr,
    parse_reg,
)


class TestReg:
    def test_names(self):
        assert gpr(31).name == "r31"
        assert fpr(0).name == "f0"
        assert cr(7).name == "cr7"
        assert CTR.name == "ctr"

    def test_equality_and_hash(self):
        assert gpr(3) == gpr(3)
        assert gpr(3) != gpr(4)
        assert gpr(3) != fpr(3)
        assert len({gpr(3), gpr(3), fpr(3)}) == 2

    def test_usable_as_dict_key(self):
        d = {gpr(1): "a", cr(1): "b"}
        assert d[gpr(1)] == "a"
        assert d[cr(1)] == "b"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(RegClass.GPR, -1)

    def test_unbounded_indices(self):
        # symbolic registers: any non-negative index is legal
        assert gpr(123456).name == "r123456"

    @given(st.integers(min_value=0, max_value=10_000))
    def test_parse_round_trip(self, index):
        for maker in (gpr, fpr, cr):
            reg = maker(index)
            assert parse_reg(reg.name) == reg

    def test_parse_ctr(self):
        assert parse_reg("ctr") == CTR

    def test_parse_rejects_garbage(self):
        for bad in ("x1", "r", "cr", "r1x", "", "R3", "f-1"):
            with pytest.raises(ValueError):
                parse_reg(bad)


class TestConditionBits:
    def test_paper_encoding(self):
        # the paper writes 0x1/lt and 0x2/gt in Figure 2
        assert CR_LT == 0x1
        assert CR_GT == 0x2
        assert CR_EQ == 0x4

    def test_bits_disjoint(self):
        assert CR_LT & CR_GT == 0
        assert CR_LT & CR_EQ == 0
        assert CR_GT & CR_EQ == 0


class TestMemRef:
    def test_render(self):
        mem = MemRef(gpr(31), 4, symbol="a")
        assert str(mem) == "a(r31,4)"
        assert str(MemRef(gpr(1), -8)) == "(r1,-8)"

    def test_byte_range(self):
        assert MemRef(gpr(1), 8).byte_range() == (8, 12)
        assert MemRef(gpr(1), 8, width=8).byte_range() == (8, 16)

    def test_base_must_be_gpr(self):
        with pytest.raises(ValueError):
            MemRef(cr(0), 0)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            MemRef(gpr(1), 0, width=0)
