"""Tests for the IR structural verifier."""

import pytest

from repro.ir import (
    Builder,
    CR_LT,
    Function,
    Instruction,
    Opcode,
    VerificationError,
    cr,
    gpr,
    parse_function,
    verify_function,
    verify_reachable,
)


def test_figure2_verifies(figure2):
    verify_function(figure2)
    verify_reachable(figure2)


def test_branch_must_be_terminator():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    b.b("a")
    b.nop()  # instruction after a branch
    with pytest.raises(VerificationError, match="not the block terminator"):
        verify_function(f)


def test_branch_target_must_exist():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    b.b("nowhere")
    with pytest.raises(VerificationError, match="does not exist"):
        verify_function(f)


def test_mask_must_be_single_bit():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    b.nop()
    ins = Instruction(Opcode.BT, uses=(cr(0),), target="a", mask=0x3)
    f.emit(f.block("a"), ins)
    with pytest.raises(VerificationError, match="single LT/GT/EQ bit"):
        verify_function(f)


def test_branch_must_test_condition_register():
    f = Function("f")
    ins = Instruction(Opcode.BT, uses=(gpr(0),), target="a", mask=CR_LT)
    block = f.add_block("a")
    f.emit(block, ins)
    with pytest.raises(VerificationError, match="condition register"):
        verify_function(f)


def test_duplicate_uids_detected(figure2):
    figure2.block("BL2").instrs[0].uid = 1  # clashes with I1
    with pytest.raises(VerificationError, match="duplicate uid"):
        verify_function(figure2)


def test_compare_must_define_cr():
    f = Function("f")
    block = f.add_block("a")
    f.emit(block, Instruction(Opcode.C, defs=(gpr(0),),
                              uses=(gpr(1), gpr(2))))
    with pytest.raises(VerificationError, match="condition register"):
        verify_function(f)


def test_unreachable_block_detected():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    b.ret()
    b.start_block("island")
    b.ret()
    verify_function(f)  # structurally fine
    with pytest.raises(VerificationError, match="unreachable"):
        verify_reachable(f)


def test_missing_immediate():
    f = Function("f")
    block = f.add_block("a")
    f.emit(block, Instruction(Opcode.AI, defs=(gpr(0),), uses=(gpr(1),)))
    with pytest.raises(VerificationError, match="immediate"):
        verify_function(f)


def test_empty_function_rejected():
    with pytest.raises(VerificationError, match="no blocks"):
        verify_function(Function("empty"))


def test_conditional_in_last_block_allowed():
    # the not-taken path simply leaves the function (Figure 2's loop end)
    f = parse_function(
        "function f\na:\n    C cr0=r1,r2\n    BT a,cr0,0x1/lt\n")
    verify_function(f)
