"""Tests for Function: layout, successors, registers, uids."""

import pytest

from repro.ir import Builder, CR_LT, Function, Opcode, RegClass, cr, gpr


def linear_function():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    b.li(gpr(1), 1)
    b.start_block("b")
    b.li(gpr(2), 2)
    b.start_block("c")
    b.ret(gpr(2))
    return f


class TestLayoutAndEdges:
    def test_fallthrough_chain(self):
        f = linear_function()
        a, b, c = f.blocks
        assert f.successors(a) == [b]
        assert f.successors(b) == [c]
        assert f.successors(c) == []

    def test_conditional_successors_taken_first(self, figure2):
        bl1 = figure2.block("CL.0")
        succs = [s.label for s in figure2.successors(bl1)]
        assert succs == ["CL.4", "BL2"]

    def test_unconditional_branch(self, figure2):
        bl5 = figure2.block("BL5")
        assert [s.label for s in figure2.successors(bl5)] == ["CL.9"]

    def test_predecessors(self, figure2):
        preds = figure2.predecessors_map()
        assert sorted(b.label for b in preds["CL.9"]) == \
            ["BL5", "BL9", "CL.11", "CL.6"]
        assert [b.label for b in preds["CL.0"]] == ["CL.9"]

    def test_falls_off_end(self, figure2):
        assert figure2.falls_off_end(figure2.block("CL.9"))
        assert not figure2.falls_off_end(figure2.block("CL.0"))

    def test_exit_blocks(self, figure2):
        assert [b.label for b in figure2.exit_blocks()] == ["CL.9"]

    def test_ret_is_exit(self):
        f = linear_function()
        assert [b.label for b in f.exit_blocks()] == ["c"]

    def test_add_block_after(self):
        f = linear_function()
        mid = f.add_block("m", after=f.block("a"))
        assert [b.label for b in f.blocks] == ["a", "m", "b", "c"]
        assert f.fallthrough(f.block("a")) is mid

    def test_remove_block(self):
        f = linear_function()
        f.remove_block(f.block("b"))
        assert not f.has_block("b")
        assert [b.label for b in f.blocks] == ["a", "c"]

    def test_duplicate_label_rejected(self):
        f = linear_function()
        with pytest.raises(ValueError):
            f.add_block("a")

    def test_fresh_label_never_collides(self):
        f = linear_function()
        seen = {b.label for b in f.blocks}
        for _ in range(10):
            label = f.fresh_label()
            assert label not in seen
            f.add_block(label)
            seen.add(label)


class TestRegistersAndUids:
    def test_new_regs_avoid_parsed_ones(self, figure2):
        reg = figure2.new_gpr()
        assert reg.index > 31  # r31 appears in Figure 2
        crx = figure2.new_cr()
        assert crx.index > 7

    def test_new_regs_monotonic(self):
        f = Function("f")
        r1, r2 = f.new_gpr(), f.new_gpr()
        assert r2.index == r1.index + 1
        assert f.new_reg(RegClass.CR) != f.new_reg(RegClass.CR)

    def test_uids_monotonic(self):
        f = linear_function()
        uids = [ins.uid for ins in f.instructions()]
        assert uids == sorted(uids)
        assert len(set(uids)) == len(uids)

    def test_block_of_map(self, figure2):
        mapping = figure2.block_of_map()
        i18 = figure2.block("CL.9").instrs[0]
        assert mapping[id(i18)].label == "CL.9"
        assert len(mapping) == 20
