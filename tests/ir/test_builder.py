"""Tests for the IR builder."""

import pytest

from repro.ir import (
    Builder,
    CR_LT,
    Function,
    Opcode,
    cr,
    gpr,
    verify_function,
)


def test_builder_reproduces_figure2_bl10(figure2):
    f = Function("bl10")
    b = Builder(f)
    b.start_block("CL.9")
    b.ai(gpr(29), gpr(29), 2, comment="i = i+2")
    b.cmp(cr(4), gpr(29), gpr(27), comment="i < n")
    b.bt("CL.9", cr(4), CR_LT)
    verify_function(f)
    ours = [str(i) for i in f.block("CL.9").instrs]
    paper = [str(i) for i in figure2.block("CL.9").instrs]
    assert ours == [p.replace("CL.0", "CL.9") for p in paper]


def test_emit_requires_current_block():
    b = Builder(Function("f"))
    with pytest.raises(ValueError, match="no current block"):
        b.nop()


def test_load_update_operands():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    ins = b.load_update(gpr(0), gpr(31), 8, symbol="a")
    assert ins.opcode is Opcode.LU
    assert ins.defs == (gpr(0), gpr(31))
    assert ins.uses == (gpr(31),)
    assert ins.mem.disp == 8


def test_store_update_operands():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    ins = b.store_update(gpr(5), gpr(31), 4)
    assert ins.opcode is Opcode.STU
    assert ins.defs == (gpr(31),)
    assert ins.uses == (gpr(5), gpr(31))


def test_call_operands():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    ins = b.call("printf", (gpr(3), gpr(4)), rets=(gpr(3),))
    assert ins.target == "printf"
    assert ins.uses == (gpr(3), gpr(4))
    assert ins.defs == (gpr(3),)


def test_every_helper_emits_expected_opcode():
    f = Function("f")
    b = Builder(f)
    b.start_block("a")
    cases = [
        (b.add(gpr(1), gpr(2), gpr(3)), Opcode.A),
        (b.ai(gpr(1), gpr(2), 1), Opcode.AI),
        (b.sub(gpr(1), gpr(2), gpr(3)), Opcode.S),
        (b.si(gpr(1), gpr(2), 1), Opcode.SI),
        (b.mul(gpr(1), gpr(2), gpr(3)), Opcode.MUL),
        (b.div(gpr(1), gpr(2), gpr(3)), Opcode.DIV),
        (b.rem(gpr(1), gpr(2), gpr(3)), Opcode.REM),
        (b.and_(gpr(1), gpr(2), gpr(3)), Opcode.AND),
        (b.andi(gpr(1), gpr(2), 7), Opcode.ANDI),
        (b.or_(gpr(1), gpr(2), gpr(3)), Opcode.OR),
        (b.ori(gpr(1), gpr(2), 7), Opcode.ORI),
        (b.xor(gpr(1), gpr(2), gpr(3)), Opcode.XOR),
        (b.xori(gpr(1), gpr(2), 7), Opcode.XORI),
        (b.sl(gpr(1), gpr(2), 2), Opcode.SL),
        (b.sr(gpr(1), gpr(2), 2), Opcode.SR),
        (b.sra(gpr(1), gpr(2), 2), Opcode.SRA),
        (b.neg(gpr(1), gpr(2)), Opcode.NEG),
        (b.not_(gpr(1), gpr(2)), Opcode.NOT),
        (b.lr(gpr(1), gpr(2)), Opcode.LR),
        (b.li(gpr(1), 5), Opcode.LI),
        (b.cmp(cr(0), gpr(1), gpr(2)), Opcode.C),
        (b.cmpi(cr(0), gpr(1), 5), Opcode.CI),
        (b.nop(), Opcode.NOP),
    ]
    for ins, opcode in cases:
        assert ins.opcode is opcode
    assert f.size() == len(cases)
