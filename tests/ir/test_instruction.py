"""Tests for Instruction behaviour and the opcode table."""

from repro.ir import (
    CR_GT,
    Instruction,
    MemRef,
    Opcode,
    UnitType,
    cr,
    gpr,
)


def make_load():
    return Instruction(Opcode.L, defs=(gpr(12),), uses=(gpr(31),),
                       mem=MemRef(gpr(31), 4, symbol="a"))


class TestOpcodeTable:
    def test_unit_types(self):
        assert Opcode.A.unit is UnitType.FXU
        assert Opcode.FA.unit is UnitType.FPU
        assert Opcode.BT.unit is UnitType.BRU

    def test_store_never_speculates(self):
        # Section 5.1: "instructions that are never scheduled speculatively,
        # like store to memory instructions"
        assert not Opcode.ST.can_speculate
        assert not Opcode.STU.can_speculate
        assert not Opcode.FST.can_speculate
        assert Opcode.ST.can_move_globally  # useful motion is allowed

    def test_call_never_moves(self):
        # Section 5.1: "instructions that are never moved beyond basic
        # block boundaries, like calls to subroutines"
        assert not Opcode.CALL.can_move_globally
        assert Opcode.CALL.touches_memory

    def test_branches_are_terminators(self):
        for op in (Opcode.B, Opcode.BT, Opcode.BF, Opcode.RET, Opcode.BDNZ):
            assert op.is_terminator
        assert not Opcode.CALL.is_terminator  # calls may sit mid-block

    def test_loads_can_speculate(self):
        # speculative loads are the "gamble" of Section 4.1
        assert Opcode.L.can_speculate
        assert Opcode.LU.can_speculate

    def test_compare_flags(self):
        assert Opcode.C.is_compare
        assert Opcode.CI.is_compare
        assert Opcode.FC.is_compare
        assert not Opcode.A.is_compare

    def test_mnemonic_lookup_closed(self):
        from repro.ir import MNEMONIC_TO_OPCODE
        assert len(MNEMONIC_TO_OPCODE) == len(Opcode)


class TestInstruction:
    def test_identity_semantics(self):
        a, b = make_load(), make_load()
        assert a is not b
        assert a != b  # eq=False: identity comparison
        assert len({id(a), id(b)}) == 2

    def test_clone_is_fresh(self):
        a = make_load()
        a.uid = 7
        b = a.clone()
        assert b.uid == -1
        assert b.defs == a.defs and b.mem == a.mem
        assert b is not a

    def test_rename_registers(self):
        ins = Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        ins.rename_registers({gpr(2): gpr(9), gpr(1): gpr(8)})
        assert ins.defs == (gpr(8),)
        assert ins.uses == (gpr(9), gpr(3))

    def test_rename_updates_memory_base(self):
        ins = make_load()
        ins.rename_registers({gpr(31): gpr(40)})
        assert ins.mem.base == gpr(40)
        assert ins.uses == (gpr(40),)

    def test_rename_uses_only(self):
        # AI r1 = r1 + 2: renaming uses must not touch the definition
        ins = Instruction(Opcode.AI, defs=(gpr(1),), uses=(gpr(1),), imm=2)
        ins.rename_uses_of(gpr(1), gpr(5))
        assert ins.defs == (gpr(1),)
        assert ins.uses == (gpr(5),)

    def test_operand_text_matches_figure2(self):
        assert str(make_load()) == "L     r12=a(r31,4)"
        branch = Instruction(Opcode.BF, uses=(cr(7),), target="CL.4",
                             mask=CR_GT)
        assert str(branch) == "BF    CL.4,cr7,0x2/gt"

    def test_retarget(self):
        branch = Instruction(Opcode.B, target="X")
        branch.retarget("X", "Y")
        assert branch.target == "Y"
        branch.retarget("X", "Z")
        assert branch.target == "Y"

    def test_writes_memory(self):
        st = Instruction(Opcode.ST, uses=(gpr(1), gpr(2)),
                         mem=MemRef(gpr(2), 0))
        assert st.writes_memory and st.touches_memory
        assert make_load().touches_memory and not make_load().writes_memory
