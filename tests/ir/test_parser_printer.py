"""Round-trip and error tests for the textual IR format."""

import pytest

from repro.ir import (
    Opcode,
    ParseError,
    format_function,
    gpr,
    parse_function,
    verify_function,
)

from ..conftest import FIGURE2


class TestRoundTrip:
    def test_figure2_round_trips(self, figure2):
        text = format_function(figure2)
        again = parse_function(text)
        assert format_function(again) == text

    def test_figure2_structure(self, figure2):
        assert figure2.name == "minmax_loop"
        assert [b.label for b in figure2.blocks] == [
            "CL.0", "BL2", "BL3", "CL.6", "BL5",
            "CL.4", "BL7", "CL.11", "BL9", "CL.9",
        ]
        assert figure2.size() == 20
        verify_function(figure2)

    def test_explicit_uids_preserved(self, figure2):
        uids = [ins.uid for ins in figure2.instructions()]
        assert uids == list(range(1, 21))

    def test_comments_preserved(self, figure2):
        first = figure2.block("CL.0").instrs[0]
        assert first.comment == "load u"

    def test_all_opcode_forms_round_trip(self):
        text = """
function forms
start:
    L     r1=(r2,0)
    LU    r3,r2=buf(r2,8)
    ST    r1=>(r2,4)
    STU   r1,r2=>(r2,4)
    LI    r4=-17
    LR    r5=r4
    A     r6=r5,r4
    AI    r7=r6,3
    S     r8=r7,r6
    SI    r9=r8,1
    MUL   r10=r9,r8
    DIV   r11=r10,r9
    REM   r12=r11,r10
    AND   r13=r12,r11
    ANDI  r14=r13,255
    OR    r15=r14,r13
    ORI   r16=r15,15
    XOR   r17=r16,r15
    XORI  r18=r17,1
    SL    r19=r18,2
    SR    r20=r19,1
    SRA   r21=r20,3
    NEG   r22=r21
    NOT   r23=r22
    C     cr0=r23,r22
    CI    cr1=r23,0
    FL    f1=(r2,16)
    FMR   f2=f1
    FA    f3=f2,f1
    FC    cr2=f3,f2
    FST   f3=>(r2,24)
    MTCTR ctr=r1
    NOP
    CALL  r3=helper(r1,r2)
    BT    done,cr0,0x1/lt
mid:
    BF    done,cr1,0x4/eq
mid2:
    BDNZ  mid
done:
    RET   r3
"""
        func = parse_function(text)
        verify_function(func)
        assert format_function(parse_function(format_function(func))) == \
            format_function(func)

    def test_width_annotation_round_trips(self):
        text = "function w\nb:\n    L r1=(r2,0):8\n"
        func = parse_function(text)
        ins = func.block("b").instrs[0]
        assert ins.mem.width == 8
        assert parse_function(format_function(func)) is not None


class TestParseErrors:
    def test_missing_function_line(self):
        with pytest.raises(ParseError):
            parse_function("b:\n    NOP\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(ParseError, match="unknown mnemonic"):
            parse_function("function f\nb:\n    FROB r1=r2\n")

    def test_duplicate_uid(self):
        with pytest.raises(ParseError, match="duplicate uid"):
            parse_function("function f\nb:\n    (I1) NOP\n    (I1) NOP\n")

    def test_partial_uids_rejected(self):
        with pytest.raises(ParseError):
            parse_function("function f\nb:\n    (I1) NOP\n    NOP\n")

    def test_bad_memory_operand(self):
        with pytest.raises(ParseError):
            parse_function("function f\nb:\n    L r1=oops\n")

    def test_bad_mask_name(self):
        with pytest.raises(ParseError, match="does not match"):
            parse_function("function f\nb:\n    BT x,cr0,0x1/gt\nx:\n    NOP\n")

    def test_duplicate_label(self):
        with pytest.raises(ValueError):
            parse_function("function f\nb:\n    NOP\nb:\n    NOP\n")

    def test_second_function_line(self):
        with pytest.raises(ParseError):
            parse_function("function f\nfunction g\n")


class TestPrinter:
    def test_instruction_numbers_travel_with_moves(self, figure2):
        # simulate a motion: I18 into CL.0
        bl10 = figure2.block("CL.9")
        i18 = bl10.instrs[0]
        bl10.remove(i18)
        figure2.block("CL.0").insert_before_terminator(i18)
        text = format_function(figure2)
        cl0_section = text.split("BL2:")[0]
        assert "(I18)" in cl0_section

    def test_unnumbered_rendering(self, figure2):
        text = format_function(figure2, number=False)
        assert "(I1)" not in text
        assert "L     r12=a(r31,4)" in text
