"""Parser tests for the mini-C subset."""

import pytest

from repro.lang import CParseError, parse_c
from repro.lang import cast as C


def parse_one(src):
    return parse_c(src).functions[0]


class TestDeclarations:
    def test_function_signature(self):
        f = parse_one("int f(int a[], int n, int *p) { return n; }")
        assert f.name == "f" and f.returns_value
        assert [(p.name, p.is_array) for p in f.params] == [
            ("a", True), ("n", False), ("p", True)]

    def test_void_function(self):
        f = parse_one("void g() { }")
        assert not f.returns_value and f.params == ()

    def test_multiple_functions(self):
        prog = parse_c("int f() { return 1; } int g() { return 2; }")
        assert [f.name for f in prog.functions] == ["f", "g"]
        assert prog.function("g").name == "g"
        with pytest.raises(KeyError):
            prog.function("h")


class TestStatements:
    def test_decl_with_init(self):
        f = parse_one("int f() { int x = 3; return x; }")
        decl = f.body.statements[0]
        assert isinstance(decl, C.Decl) and decl.name == "x"
        assert decl.init == C.Num(3)

    def test_compound_assignment_desugars(self):
        f = parse_one("int f(int x) { x += 2; x <<= 1; return x; }")
        stmt = f.body.statements[0]
        assert isinstance(stmt, C.Assign)
        assert stmt.value == C.Binary("+", C.Var("x"), C.Num(2))
        stmt2 = f.body.statements[1]
        assert stmt2.value == C.Binary("<<", C.Var("x"), C.Num(1))

    def test_increment_desugars(self):
        f = parse_one("int f(int x) { x++; x--; return x; }")
        assert f.body.statements[0].value == \
            C.Binary("+", C.Var("x"), C.Num(1))
        assert f.body.statements[1].value == \
            C.Binary("-", C.Var("x"), C.Num(1))

    def test_if_else_chain(self):
        f = parse_one("int f(int x) { if (x) { return 1; } else return 2; }")
        stmt = f.body.statements[0]
        assert isinstance(stmt, C.If)
        assert isinstance(stmt.orelse, C.Block)

    def test_for_loop(self):
        f = parse_one("int f(int n) { int s = 0;"
                      " for (int i = 0; i < n; i++) s += i; return s; }")
        loop = f.body.statements[1]
        assert isinstance(loop, C.For)
        assert isinstance(loop.init, C.Decl)
        assert loop.cond == C.Binary("<", C.Var("i"), C.Var("n"))

    def test_break_continue(self):
        f = parse_one(
            "int f() { while (1) { if (2) break; continue; } return 0; }")
        loop = f.body.statements[0]
        assert isinstance(loop.body.statements[0].then.statements[0], C.Break)
        assert isinstance(loop.body.statements[1], C.Continue)


class TestExpressions:
    def expr(self, text):
        f = parse_one(f"int f(int a[], int x, int y) {{ return {text}; }}")
        return f.body.statements[0].value

    def test_precedence(self):
        assert self.expr("x + y * 2") == C.Binary(
            "+", C.Var("x"), C.Binary("*", C.Var("y"), C.Num(2)))
        assert self.expr("x << 1 + y") == C.Binary(
            "<<", C.Var("x"), C.Binary("+", C.Num(1), C.Var("y")))
        assert self.expr("x & y == 2") == C.Binary(
            "&", C.Var("x"), C.Binary("==", C.Var("y"), C.Num(2)))

    def test_left_associativity(self):
        assert self.expr("x - y - 2") == C.Binary(
            "-", C.Binary("-", C.Var("x"), C.Var("y")), C.Num(2))

    def test_logical_short_circuit_nodes(self):
        e = self.expr("x && y || x")
        assert isinstance(e, C.Logical) and e.op == "||"
        assert isinstance(e.left, C.Logical) and e.left.op == "&&"

    def test_unary(self):
        assert self.expr("-x") == C.Unary("-", C.Var("x"))
        assert self.expr("!~x") == C.Unary("!", C.Unary("~", C.Var("x")))
        assert self.expr("+x") == C.Var("x")

    def test_array_and_call(self):
        assert self.expr("a[x + 1]") == C.ArrayRef(
            "a", C.Binary("+", C.Var("x"), C.Num(1)))
        assert self.expr("f(x, 2)") == C.Call("f", (C.Var("x"), C.Num(2)))

    def test_parentheses(self):
        assert self.expr("(x + y) * 2") == C.Binary(
            "*", C.Binary("+", C.Var("x"), C.Var("y")), C.Num(2))

    def test_hex_literal(self):
        assert self.expr("0xFF") == C.Num(255)


class TestErrors:
    def test_lvalue_required(self):
        with pytest.raises(CParseError, match="assignment target"):
            parse_c("int f(int x) { x + 1 = 2; }")

    def test_missing_paren(self):
        with pytest.raises(CParseError):
            parse_c("int f( { }")

    def test_missing_semicolon(self):
        with pytest.raises(CParseError):
            parse_c("int f() { int x = 1 return x; }")

    def test_figure1_program_parses(self):
        from repro.bench import MINMAX_C
        prog = parse_c(MINMAX_C)
        assert prog.functions[0].name == "minmax"
