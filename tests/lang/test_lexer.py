"""Lexer tests."""

import pytest

from repro.lang import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    assert kinds("int intx") == [("kw", "int"), ("ident", "intx")]
    assert kinds("while whilst") == [("kw", "while"), ("ident", "whilst")]


def test_numbers():
    assert kinds("0 42 0x1F") == [("num", "0"), ("num", "42"),
                                  ("num", "0x1F")]


def test_multichar_operators_longest_match():
    assert kinds("<<= << <= <") == [("op", "<<="), ("op", "<<"),
                                    ("op", "<="), ("op", "<")]
    assert kinds("a+++1") == [("ident", "a"), ("op", "++"), ("op", "+"),
                              ("num", "1")]


def test_comments_stripped():
    src = """
int x; // line comment
/* block
   comment */ int y;
"""
    assert kinds(src) == [("kw", "int"), ("ident", "x"), ("op", ";"),
                          ("kw", "int"), ("ident", "y"), ("op", ";")]


def test_line_numbers():
    tokens = tokenize("a\nb\n\nc")
    assert [t.line for t in tokens[:-1]] == [1, 2, 4]


def test_string_literal():
    tokens = tokenize('printf("min=%d max=%d\\n", min)')
    assert tokens[2].kind == "str"


def test_unterminated_comment():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("/* never ends")


def test_bad_character():
    with pytest.raises(LexError, match="unexpected character"):
        tokenize("int $x;")


def test_eof_token():
    assert tokenize("")[-1].kind == "eof"
