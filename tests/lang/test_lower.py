"""Lowering tests: mini-C -> IR."""

import pytest

from repro.lang import LowerError, compile_c_functions
from repro.ir import Opcode, verify_function, verify_reachable
from repro.sim import execute


def lower_one(src):
    units = compile_c_functions(src)
    (cf,) = units.values()
    verify_function(cf.func)
    verify_reachable(cf.func)
    return cf


def run(cf, *args, call_handlers=None, memory=None):
    regs = {}
    memory = dict(memory or {})
    base = 0x1000
    for param, value in zip(cf.params, args):
        reg = cf.param_regs[param.name]
        if param.is_array:
            for i, word in enumerate(value):
                memory[base + 4 * i] = word
            regs[reg] = base
            base += 0x1000
        else:
            regs[reg] = value
    return execute(cf.func, regs=regs, memory=memory,
                   call_handlers=call_handlers or {})


class TestScalars:
    def test_arith(self):
        cf = lower_one("int f(int x, int y) { return (x + y) * (x - y); }")
        assert run(cf, 7, 3).return_value == 40

    def test_division_and_modulo(self):
        cf = lower_one("int f(int x, int y) { return x / y + x % y; }")
        assert run(cf, 17, 5).return_value == 3 + 2

    def test_bitops(self):
        cf = lower_one(
            "int f(int x, int y) { return (x & y) | (x ^ y) | ~x; }")
        assert run(cf, 12, 10).return_value == (12 & 10) | (12 ^ 10) | ~12

    def test_shifts(self):
        cf = lower_one("int f(int x) { return (x << 3) + (x >> 1); }")
        assert run(cf, 10).return_value == 85

    def test_unary_minus(self):
        cf = lower_one("int f(int x) { return -x; }")
        assert run(cf, 9).return_value == -9

    def test_immediate_folding(self):
        cf = lower_one("int f(int x) { return x + 3; }")
        ops = [i.opcode for i in cf.func.instructions()]
        assert Opcode.AI in ops and Opcode.LI not in ops

    def test_multiply_by_power_of_two_is_shift(self):
        cf = lower_one("int f(int x) { return x * 8; }")
        ops = [i.opcode for i in cf.func.instructions()]
        assert Opcode.SL in ops and Opcode.MUL not in ops

    def test_comparison_as_value(self):
        cf = lower_one("int f(int x, int y) { return (x < y) + (x == y); }")
        assert run(cf, 1, 2).return_value == 1
        assert run(cf, 2, 2).return_value == 1
        assert run(cf, 3, 2).return_value == 0

    def test_logical_value(self):
        cf = lower_one("int f(int x, int y) { return x && y; }")
        assert run(cf, 1, 2).return_value == 1
        assert run(cf, 0, 2).return_value == 0

    def test_not_value(self):
        cf = lower_one("int f(int x) { return !x; }")
        assert run(cf, 0).return_value == 1
        assert run(cf, 5).return_value == 0


class TestControlFlow:
    def test_if_else(self):
        cf = lower_one(
            "int f(int x) { if (x > 0) return 1; else return -1; }")
        assert run(cf, 5).return_value == 1
        assert run(cf, -5).return_value == -1

    def test_short_circuit_and(self):
        # a[1] must not be read when the first operand fails
        cf = lower_one("""
int f(int a[], int x) {
    if (x > 0 && a[0] > 0) { return 1; }
    return 0;
}
""")
        assert run(cf, [5], 1).return_value == 1
        assert run(cf, [5], 0).return_value == 0
        assert run(cf, [-5], 1).return_value == 0

    def test_short_circuit_or(self):
        cf = lower_one(
            "int f(int x, int y) { if (x || y) return 1; return 0; }")
        assert run(cf, 0, 0).return_value == 0
        assert run(cf, 1, 0).return_value == 1
        assert run(cf, 0, 1).return_value == 1

    def test_while_loop(self):
        cf = lower_one("""
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) { s += i; i++; }
    return s;
}
""")
        for n in (0, 1, 5, 10):
            assert run(cf, n).return_value == n * (n - 1) // 2

    def test_while_is_bottom_tested(self):
        # Figure 2 shape: back edge is a conditional branch at the bottom
        cf = lower_one(
            "int f(int n) { int i = 0; while (i < n) i++; return i; }")
        latches = [b for b in cf.func.blocks
                   if b.terminator is not None
                   and b.terminator.opcode in (Opcode.BT, Opcode.BF)
                   and cf.func.has_block(b.terminator.target)]
        # some conditional branch targets an earlier block
        layout = {b.label: i for i, b in enumerate(cf.func.blocks)}
        assert any(layout[b.terminator.target] <= layout[b.label]
                   for b in latches)

    def test_for_loop_with_continue(self):
        cf = lower_one("""
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 2) continue;
        s += i;
    }
    return s;
}
""")
        assert run(cf, 5).return_value == 0 + 1 + 3 + 4

    def test_while_with_break(self):
        cf = lower_one("""
int f(int n) {
    int i = 0;
    while (1) {
        if (i >= n) break;
        i++;
    }
    return i;
}
""")
        assert run(cf, 7).return_value == 7

    def test_call_in_condition_not_duplicated(self):
        cf = lower_one("""
int f(int n) {
    int i = 0;
    while (check(i) < n) { i++; }
    return i;
}
""")
        calls = [i for i in cf.func.instructions() if i.opcode is Opcode.CALL]
        assert len(calls) == 1  # the top-test shape avoids duplication
        res = run(cf, 3, call_handlers={"check": lambda a: [a[0]]})
        assert res.return_value == 3


class TestArrays:
    def test_constant_index_folds_into_displacement(self):
        cf = lower_one("int f(int a[]) { return a[2]; }")
        loads = [i for i in cf.func.instructions() if i.opcode is Opcode.L]
        assert len(loads) == 1 and loads[0].mem.disp == 8
        assert run(cf, [10, 20, 30]).return_value == 30

    def test_computed_index(self):
        cf = lower_one("int f(int a[], int i) { return a[i + 1]; }")
        assert run(cf, [10, 20, 30], 1).return_value == 30

    def test_array_store(self):
        cf = lower_one("""
int f(int a[], int n) {
    int i = 0;
    while (i < n) { a[i] = i * 2; i++; }
    return a[0];
}
""")
        res = run(cf, [9, 9, 9], 3)
        mem = res.memory
        assert [mem[0x1000 + 4 * i] for i in range(3)] == [0, 2, 4]


class TestCallsAndErrors:
    def test_call_result(self):
        cf = lower_one("int f(int x) { return g(x, 2) + 1; }")
        res = run(cf, 5, call_handlers={"g": lambda a: [a[0] * a[1]]})
        assert res.return_value == 11

    def test_void_call_statement(self):
        cf = lower_one("void f(int x) { log(x); }")
        seen = []
        run(cf, 3, call_handlers={"log": lambda a: seen.append(a[0]) or []})
        assert seen == [3]

    def test_undeclared_variable(self):
        with pytest.raises(LowerError, match="undeclared"):
            compile_c_functions("int f() { return nope; }")

    def test_redeclaration(self):
        with pytest.raises(LowerError, match="redeclaration"):
            compile_c_functions("int f() { int x; int x; return 0; }")

    def test_array_used_as_scalar(self):
        with pytest.raises(LowerError, match="as a scalar"):
            compile_c_functions("int f(int a[]) { return a + 1; }")

    def test_scalar_indexed(self):
        with pytest.raises(LowerError, match="indexed"):
            compile_c_functions("int f(int x) { return x[0]; }")

    def test_break_outside_loop(self):
        with pytest.raises(LowerError, match="break"):
            compile_c_functions("int f() { break; }")

    def test_precise_exit_liveness(self):
        cf = lower_one("int f(int x) { return x; }")
        assert cf.live_at_exit == frozenset()
