"""Front-end corner cases: headerless for-loops, operators, comments."""

import pytest

from repro.lang import CParseError, compile_c_functions, parse_c
from repro.sim import execute


def run_one(src, *scalars):
    (cf,) = compile_c_functions(src).values()
    regs = {cf.param_regs[p.name]: v for p, v in zip(cf.params, scalars)}
    return execute(cf.func, regs=regs).return_value


class TestForVariants:
    def test_for_without_init(self):
        assert run_one("""
int f(int n) {
    int i = 0;
    int s = 0;
    for (; i < n; i++) { s += 2; }
    return s;
}
""", 5) == 10

    def test_for_without_cond_uses_break(self):
        assert run_one("""
int f(int n) {
    int s = 0;
    for (int i = 0; ; i++) {
        if (i >= n) break;
        s += i;
    }
    return s;
}
""", 4) == 6

    def test_for_without_step(self):
        assert run_one("""
int f(int n) {
    int s = 0;
    for (int i = 0; i < n;) { s += 1; i += 1; }
    return s;
}
""", 3) == 3

    def test_for_with_expression_init(self):
        assert run_one("""
int f(int n) {
    int i;
    int s = 0;
    for (i = 1; i <= n; i++) { s += i; }
    return s;
}
""", 4) == 10


class TestOperators:
    def test_nested_ternary_style_ifs(self):
        src = """
int sign(int x) {
    if (x < 0) return -1;
    if (x > 0) return 1;
    return 0;
}
"""
        assert run_one(src, -7) == -1
        assert run_one(src, 7) == 1
        assert run_one(src, 0) == 0

    def test_chained_logicals(self):
        src = """
int f(int x, int y) {
    if (x > 0 && x < 10 && y != 3 || x == 100) return 1;
    return 0;
}
"""
        assert run_one(src, 5, 2) == 1
        assert run_one(src, 5, 3) == 0
        assert run_one(src, 100, 3) == 1

    def test_not_in_condition(self):
        src = "int f(int x) { if (!(x == 2)) return 1; return 0; }"
        assert run_one(src, 3) == 1
        assert run_one(src, 2) == 0

    def test_deeply_nested_parens(self):
        assert run_one(
            "int f(int x) { return (((x + 1)) * ((2))); }", 20) == 42

    def test_compound_ops_all(self):
        src = """
int f(int x) {
    x += 3; x -= 1; x *= 2; x /= 3; x %= 7;
    x &= 6; x |= 8; x ^= 1; x <<= 2; x >>= 1;
    return x;
}
"""
        v = 10
        v += 3; v -= 1; v *= 2; v //= 3; v %= 7
        v &= 6; v |= 8; v ^= 1; v <<= 2; v >>= 1
        assert run_one(src, 10) == v


class TestLexicalCorners:
    def test_comments_everywhere(self):
        assert run_one("""
/* leading */ int f(int x) { // decl
    /* mid */ return x /* operand */ + 1; // done
}
""", 4) == 5

    def test_string_literal_call_argument(self):
        # Figure 1's printf: string lowers to an opaque handle (0)
        (cf,) = compile_c_functions(
            'void f(int x) { printf("x=%d\\n", x); }').values()
        calls = []
        execute(cf.func, regs={cf.param_regs["x"]: 9},
                call_handlers={"printf": lambda a: calls.append(a) or []})
        assert calls == [[0, 9]]

    def test_unary_minus_on_literal(self):
        assert run_one("int f(int x) { return -5 + x; }", 3) == -2


class TestWhileCorners:
    def test_while_zero_never_runs(self):
        assert run_one(
            "int f(int x) { while (0) { x = 99; } return x; }", 1) == 1

    def test_nested_breaks_bind_innermost(self):
        assert run_one("""
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < 10; j++) {
            if (j == 2) break;
            s += 1;
        }
    }
    return s;
}
""", 3) == 6

    def test_continue_in_while(self):
        assert run_one("""
int f(int n) {
    int i = 0;
    int s = 0;
    while (i < n) {
        i += 1;
        if (i == 2) continue;
        s += i;
    }
    return s;
}
""", 4) == 1 + 3 + 4
