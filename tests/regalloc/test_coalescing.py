"""Move-coalescing tests (Briggs conservative)."""

import pytest

from repro.ir import Opcode, gpr, parse_function, verify_function
from repro.regalloc import allocate_registers
from repro.sim import execute

from ..conftest import FIGURE2


def test_simple_move_coalesced():
    func = parse_function("""
function f
a:
    LI r1=5
    LR r2=r1
    AI r3=r2,1
    RET r3
""")
    report = allocate_registers(func)
    verify_function(func)
    assert report.moves_removed == 1
    assert not any(i.opcode is Opcode.LR for i in func.instructions())
    assert execute(func).return_value == 6


def test_interfering_move_not_coalesced():
    # r1 is used after r2 is redefined: their ranges overlap
    func = parse_function("""
function f
a:
    LI r1=5
    LR r2=r1
    AI r2=r2,1
    A  r3=r1,r2
    RET r3
""")
    report = allocate_registers(func)
    verify_function(func)
    # the LR must survive: coalescing would merge interfering ranges
    assert any(i.opcode is Opcode.LR for i in func.instructions())
    assert execute(func).return_value == 11


def test_coalescing_can_be_disabled():
    func = parse_function("""
function f
a:
    LI r1=5
    LR r2=r1
    AI r3=r2,1
    RET r3
""")
    report = allocate_registers(func, coalesce=False)
    assert report.moves_removed == 0
    assert any(i.opcode is Opcode.LR for i in func.instructions())
    assert execute(func).return_value == 6


def test_figure2_semantics_with_coalescing():
    data = [7, -2, 9, 4, 0, 11, -8, 3, 5, 5]
    mem = {96 + 4 * i: v for i, v in enumerate(data)}
    live = frozenset({gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)})

    def final_minmax(func, mapping=None):
        def reg_of(r):
            return mapping.get(r, r) if mapping else r
        res = execute(func, regs={
            reg_of(gpr(31)): 96, reg_of(gpr(29)): 1, reg_of(gpr(27)): 9,
            reg_of(gpr(28)): data[0], reg_of(gpr(30)): data[0],
        }, memory=dict(mem))
        return (res.regs.get(reg_of(gpr(28)), 0),
                res.regs.get(reg_of(gpr(30)), 0))

    expected = final_minmax(parse_function(FIGURE2))
    func = parse_function(FIGURE2)
    report = allocate_registers(func, live_at_exit=live)
    verify_function(func)
    assert final_minmax(func, report.mapping) == expected


def test_coalesced_live_at_exit_mapping():
    # the eliminated register must still be translatable via the mapping
    func = parse_function("""
function f
a:
    LI r1=9
    LR r2=r1
    RET r2
""")
    live = frozenset({gpr(2)})
    report = allocate_registers(func, live_at_exit=live)
    assert gpr(2) in report.mapping  # translated through the alias
    res = execute(func)
    assert res.regs.get(report.mapping[gpr(2)], 0) == 9


def test_coalescing_chain():
    func = parse_function("""
function f
a:
    LI r1=3
    LR r2=r1
    LR r3=r2
    AI r4=r3,1
    RET r4
""")
    report = allocate_registers(func)
    assert report.moves_removed == 2
    assert execute(func).return_value == 4
