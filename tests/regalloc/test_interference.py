"""Interference-graph tests."""

from repro.ir import gpr, cr, parse_function
from repro.regalloc import build_interference


def test_sequential_live_ranges_do_not_interfere():
    func = parse_function("""
function f
a:
    LI r1=1
    AI r2=r1,1
    LI r3=5
    AI r4=r3,1
    RET r4
""")
    g = build_interference(func)
    # r1 dies at the AI before r3 is born
    assert not g.interferes(gpr(1), gpr(3))
    assert g.interferes(gpr(3), gpr(2)) or not g.interferes(gpr(3), gpr(2))
    # r3 is live across nothing that defines r1
    assert not g.interferes(gpr(3), gpr(1))


def test_overlapping_ranges_interfere():
    func = parse_function("""
function f
a:
    LI r1=1
    LI r2=2
    A  r3=r1,r2
    RET r3
""")
    g = build_interference(func)
    assert g.interferes(gpr(1), gpr(2))
    assert not g.interferes(gpr(1), gpr(3))


def test_move_does_not_interfere_with_source():
    func = parse_function("""
function f
a:
    LI r1=1
    LR r2=r1
    A  r3=r2,r2
    RET r3
""")
    g = build_interference(func)
    assert not g.interferes(gpr(1), gpr(2))
    assert (gpr(2), gpr(1)) in g.moves


def test_simultaneous_defs_interfere():
    # LU defines the loaded register and the updated base together
    func = parse_function("""
function f
a:
    LU r2,r1=x(r1,4)
    A  r3=r2,r1
    RET r3
""")
    g = build_interference(func)
    assert g.interferes(gpr(1), gpr(2))


def test_classes_never_interfere():
    func = parse_function("""
function f
a:
    LI r1=1
    C  cr0=r1,r1
    BT a,cr0,0x1/lt
""")
    g = build_interference(func)
    assert not g.interferes(gpr(1), cr(0))


def test_cross_block_liveness(figure2):
    g = build_interference(
        figure2, live_at_exit=frozenset({gpr(28), gpr(30)}))
    # u (r12) and v (r0) are both live across the whole comparison tree
    assert g.interferes(gpr(12), gpr(0))
    # min and max stay live together
    assert g.interferes(gpr(28), gpr(30))
    # and both interfere with the loaded values
    assert g.interferes(gpr(28), gpr(0))


def test_degree_and_nodes(figure2):
    from repro.ir import RegClass
    g = build_interference(figure2)
    gprs = g.nodes_of_class(RegClass.GPR)
    assert gpr(12) in gprs and gpr(31) in gprs
    assert g.degree(gpr(12)) >= 2
