"""Register-allocation tests: coloring, spilling, semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import RegClass, format_function, gpr, parse_function, verify_function
from repro.machine import rs6k
from repro.regalloc import (
    AllocationError,
    allocate_registers,
    build_interference,
    verify_coloring,
)
from repro.sim import execute

from ..conftest import FIGURE2


def build_wide(n):
    """n simultaneously-live values, then a left-fold over them."""
    lines = ["function wide", "a:"]
    for i in range(n):
        lines.append(f"    LI r{100 + i}={i + 1}")
    # sum them all so every LI stays live until used
    acc = 100
    for i in range(1, n):
        lines.append(f"    A r{200 + i}=r{200 + i - 1 if i > 1 else 100},"
                     f"r{100 + i}")
    lines.append(f"    RET r{200 + n - 1 if n > 1 else 100}")
    return parse_function("\n".join(lines))


class TestColoring:
    def test_figure2_fits_without_spills(self, figure2):
        report = allocate_registers(
            figure2, live_at_exit=frozenset({gpr(28), gpr(30)}))
        assert report.spilled == []
        assert report.rounds == 1
        verify_function(figure2)
        # few machine registers suffice for the loop
        assert report.machine_registers_used(RegClass.GPR) <= 8
        assert report.machine_registers_used(RegClass.CR) <= 4

    def test_mapping_is_a_valid_coloring(self, figure2):
        graph = build_interference(figure2)
        report = allocate_registers(figure2)
        # verify against a freshly parsed copy's graph, translated
        verify_coloring(graph, report.mapping)

    def test_semantics_preserved(self):
        func = parse_function(FIGURE2)
        data = [7, -2, 9, 4, 0, 11, -8, 3, 5, 5]
        mem = {96 + 4 * i: v for i, v in enumerate(data)}

        def run(f, regmap=None):
            def reg_of(r):
                return regmap.get(r, r) if regmap else r
            res = execute(f, regs={
                reg_of(gpr(31)): 96, reg_of(gpr(29)): 1,
                reg_of(gpr(27)): 9, reg_of(gpr(28)): data[0],
                reg_of(gpr(30)): data[0],
            }, memory=dict(mem))
            return (res.regs.get(reg_of(gpr(28)), 0),
                    res.regs.get(reg_of(gpr(30)), 0))

        plain = parse_function(FIGURE2)
        expected = run(plain)
        allocated = parse_function(FIGURE2)
        report = allocate_registers(
            allocated, live_at_exit=frozenset({
                gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)}))
        assert run(allocated, report.mapping) == expected


class TestSpilling:
    def test_forced_spill(self):
        func = build_wide(40)  # 40 simultaneously-live values > 32 GPRs
        verify_function(func)
        expected = execute(parse_function(format_function(func))).return_value
        report = allocate_registers(func, k={RegClass.GPR: 8})
        assert report.spilled, "expected spills with only 8 registers"
        verify_function(func)
        res = execute(func)
        # the returned value lives in a register at exit
        assert res.return_value == expected
        # every register index in the function is now < 8 plus spill temps
        used = {r.index for ins in func.instructions()
                for r in (*ins.reg_defs(), *ins.reg_uses())
                if r.rclass is RegClass.GPR}
        assert max(used) < 8

    def test_no_spill_when_enough_registers(self):
        func = build_wide(10)
        report = allocate_registers(func)
        assert report.spilled == []

    @given(st.integers(3, 20))
    @settings(max_examples=10, deadline=None)
    def test_spill_semantics_random_width(self, n):
        func = build_wide(n)
        expected = execute(parse_function(format_function(func))).return_value
        allocate_registers(func, k={RegClass.GPR: 4})
        assert execute(func).return_value == expected


class TestScheduleAfterAllocation:
    def test_paper_claim_scheduling_after_allocation_works(self, figure2):
        # "conceptually there is no problem to activate the instruction
        # scheduling after the register allocation is completed"
        from repro.sched import ScheduleLevel, global_schedule
        report = allocate_registers(
            figure2, live_at_exit=frozenset({
                gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)}))
        live = frozenset(report.mapping[r] for r in
                         (gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)))
        sched = global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE,
                                live_at_exit=live)
        verify_function(figure2)
        assert sched.motions  # motion still possible, just more constrained

    def test_allocation_constrains_scheduling(self):
        # after allocation reuses registers, anti/output dependences grow,
        # so the scheduler finds at most as many motions (the [BEH89]
        # phase-ordering tension the paper cites)
        from repro.sched import ScheduleLevel, global_schedule
        live = frozenset({gpr(28), gpr(30), gpr(29), gpr(27), gpr(31)})

        before = parse_function(FIGURE2)
        motions_before = len(global_schedule(
            before, rs6k(), ScheduleLevel.SPECULATIVE,
            live_at_exit=live).motions)

        after = parse_function(FIGURE2)
        report = allocate_registers(after, live_at_exit=live)
        live_mapped = frozenset(report.mapping[r] for r in live)
        motions_after = len(global_schedule(
            after, rs6k(), ScheduleLevel.SPECULATIVE,
            live_at_exit=live_mapped).motions)
        assert motions_after <= motions_before
