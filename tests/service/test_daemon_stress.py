"""Daemon concurrency/stress battery (ISSUE 6 satellite).

The service determinism claim, under fire: a seeded 200-request batch
mixing valid programs, parse errors, hanging chaos requests, raw
garbage, and duplicates gets **identical responses in request order**
from a ``--jobs 1`` daemon and a ``--jobs 4`` daemon.  Plus graceful
drain: shutdown mid-stream answers every request already read, and a
SIGTERM'd ``python -m repro serve`` process exits cleanly with nothing
lost.

The full 200-request run is ``slow``; a ~24-request subset keeps the
property in the fast tier.
"""

import io
import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.service import Daemon, ServeConfig

_SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src")

#: per-request deadline for chaos runs: two attempts + backoff per hang
_TIMEOUT_S = 0.15

_BAD_SOURCES = (
    "int broken(",
    "int f(int x) { return x + ; }",
    "float f() { return 1.5; }",
)


def _mixed_lines(n: int, seed: int) -> list[str]:
    """A seeded batch: valid programs (some duplicated), parse errors,
    raw non-JSON lines, and hanging chaos requests."""
    rng = random.Random(seed)
    lines: list[str] = []
    sources: list[str] = []
    for i in range(n):
        kind = rng.choices(("valid", "dup", "bad", "garbage", "chaos"),
                           weights=(5, 3, 1, 1, 1))[0]
        if kind == "dup" and sources:
            doc = {"id": i, "source": rng.choice(sources)}
        elif kind == "bad":
            doc = {"id": i, "source": rng.choice(_BAD_SOURCES)}
        elif kind == "garbage":
            lines.append(rng.choice((
                "not json at all",
                '{"id": %d}' % i,                    # no source
                '{"id": %d, "source": 42}' % i,      # non-string source
                '{"id": %d, "source": "int f(int x) { return x; }", '
                '"machine": "cray"}' % i,            # unknown machine
            )))
            continue
        elif kind == "chaos":
            doc = {"id": i,
                   "source": f"int hang{i}(int x) {{ return x; }}",
                   "chaos_hang_s": 30.0}
        else:
            k = rng.randrange(max(4, n // 8))
            source = (f"int f{k}(int a, int b) "
                      f"{{ return a * {k} + b; }}")
            sources.append(source)
            doc = {"id": i, "source": source}
            if rng.random() < 0.2:
                doc["level"] = rng.choice(("none", "useful"))
            if rng.random() < 0.2:
                doc["config"] = {"unroll_max_blocks": 0}
        lines.append(json.dumps(doc))
    return lines


def _serve(lines: list[str], jobs: int) -> list[dict]:
    config = ServeConfig(jobs=jobs, timeout_s=_TIMEOUT_S,
                         allow_chaos=True)
    with Daemon(config) as daemon:
        return daemon.serve_batch_lines(lines)


def _assert_identical_and_ordered(lines, responses_serial,
                                  responses_parallel):
    assert responses_serial == responses_parallel
    # responses come back in request order (ids echo the batch ordinal)
    assert [r["id"] for r in responses_serial] == list(range(len(lines)))


class TestMixedBatchDeterminism:
    def test_fast_subset_jobs_1_vs_4(self):
        lines = _mixed_lines(24, seed=1991)
        serial = _serve(lines, jobs=1)
        parallel = _serve(lines, jobs=4)
        _assert_identical_and_ordered(lines, serial, parallel)
        statuses = {r["status"] for r in serial}
        assert {"ok", "error"} <= statuses

    @pytest.mark.slow
    def test_200_request_batch_jobs_1_vs_4(self):
        lines = _mixed_lines(200, seed=1991)
        serial = _serve(lines, jobs=1)
        parallel = _serve(lines, jobs=4)
        _assert_identical_and_ordered(lines, serial, parallel)
        statuses = [r["status"] for r in serial]
        # the batch genuinely exercised every service path
        assert "ok" in statuses
        assert "cache-hit" in statuses
        assert "error" in statuses
        assert "quarantined" in statuses

    def test_duplicates_share_the_artifact_byte_identically(self):
        source = "int twice(int x) { return 2 * x; }"
        lines = [json.dumps({"id": i, "source": source}) for i in range(3)]
        (cold, dup1, dup2) = _serve(lines, jobs=2)
        assert cold["status"] == "ok"
        assert dup1["status"] == dup2["status"] == "cache-hit"
        for dup in (dup1, dup2):
            assert dup["assembly"] == cold["assembly"]
            assert dup["counters"] == cold["counters"]
            assert dup["rung"] == cold["rung"]


class TestGracefulDrain:
    def test_shutdown_mid_stream_answers_every_line_read(self):
        """request_shutdown() between intake and processing loses no
        accepted request: everything already read is still answered."""
        lines = _mixed_lines(12, seed=7)
        config = ServeConfig(jobs=2, timeout_s=_TIMEOUT_S,
                             allow_chaos=True, batch_size=4)
        with Daemon(config) as daemon:
            def stream():
                for line in lines:
                    yield line + "\n"
                # the reader thread runs this after the last line is in
                # its queue: from here on the daemon is shutting down
                daemon.request_shutdown()

            out = io.StringIO()
            summary = daemon.serve_stream(stream(), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert [r["id"] for r in responses] == list(range(len(lines)))
        assert summary["requests"] == len(lines)

    @pytest.mark.slow
    def test_sigterm_drains_the_serve_process_cleanly(self):
        """A SIGTERM'd ``repro serve`` answers everything it accepted and
        exits 0 -- an accepted job is never lost."""
        lines = _mixed_lines(10, seed=3)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_SRC_DIR, env.get("PYTHONPATH")) if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--jobs", "2",
             "--timeout", str(_TIMEOUT_S), "--chaos"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env)
        try:
            for line in lines:
                proc.stdin.write(line + "\n")
            proc.stdin.flush()
            # stdin stays open: only SIGTERM can end the session.  Wait
            # for every accepted request to be answered first.
            responses = [json.loads(proc.stdout.readline())
                         for _ in range(len(lines))]
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert [r["id"] for r in responses] == list(range(len(lines)))
        assert f"serve: {len(lines)} request(s)" in err


class TestSocketSession:
    def test_socket_client_sees_eof_after_its_session_is_answered(self,
                                                                  tmp_path):
        """One socket session: responses arrive, then EOF -- the daemon
        must close the makefile-wrapped fds, not just the connection."""
        import socket
        import threading

        # jobs=2 matters: forked workers must not inherit (and hold
        # open) the accepted connection's fd
        path = str(tmp_path / "repro.sock")
        config = ServeConfig(jobs=2, timeout_s=_TIMEOUT_S)
        with Daemon(config) as daemon:
            ready = threading.Event()
            server = threading.Thread(
                target=daemon.serve_socket, args=(path,),
                kwargs={"ready": ready}, daemon=True)
            server.start()
            assert ready.wait(timeout=10)
            try:
                client = socket.socket(socket.AF_UNIX)
                client.settimeout(30)
                client.connect(path)
                client.sendall(
                    b'{"id": 0, "source": "int g(int x) { return x * 7; }"}\n'
                    b'{"id": 1, "source": "int broken("}\n')
                client.shutdown(socket.SHUT_WR)
                data = b""
                while True:  # a hang here is the regression
                    chunk = client.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                client.close()
            finally:
                daemon.request_shutdown()
                server.join(timeout=30)
        responses = [json.loads(line) for line in data.splitlines()]
        assert [r["id"] for r in responses] == [0, 1]
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "error"
