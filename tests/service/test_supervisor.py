"""Worker-crash-storm battery for :class:`repro.service.supervisor`.

ISSUE 9 satellite: kill every worker mid-drain and the supervisor must
rebuild the pool with no job lost or duplicated; results stay sorted and
byte-identical to an inline (``jobs=1``) run.  Hung jobs are parked as
typed ``quarantined`` results, and a crash storm that keeps eating pools
trips the circuit breaker into inline mode instead of thrashing forever.

Handlers live at module level (pickled by reference into the forked
workers); the poison handler only SIGKILLs itself when it is *not* the
main process, so the breaker's inline fallback survives it.
"""

import os
import signal
import threading
import time

from repro.obs.metrics import MetricsCollector
from repro.service.jobs import JobSpec
from repro.service.supervisor import SupervisedPool, SupervisorConfig

_FAST = SupervisorConfig(poll_interval_s=0.02)


def _storm_handler(payload):
    """(kind, arg) jobs: compute, dawdle-then-compute, wedge, or SIGKILL
    the worker process (arg = the test process pid to spare)."""
    kind, arg = payload
    if kind == "ok":
        return arg * 3 + 1
    if kind == "sleep":
        time.sleep(0.2)
        return arg * 3 + 1
    if kind == "hang":
        time.sleep(30.0)
        return arg
    if kind == "die":
        if os.getpid() != arg:
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived-inline"
    raise AssertionError(f"unknown job kind {kind!r}")


def _run(jobs, specs, *, supervisor=_FAST, metrics=None, killer=None):
    with SupervisedPool(_storm_handler, jobs=jobs, supervisor=supervisor,
                        metrics=metrics) as pool:
        for spec in specs:
            pool.submit(spec)
        thread = None
        if killer is not None:
            thread = threading.Thread(target=killer, args=(pool,))
            thread.start()
        results = pool.drain()
        if thread is not None:
            thread.join()
        return pool, results


class TestCrashStorm:
    def test_kill_every_worker_mid_drain_loses_nothing(self):
        """All four workers SIGKILLed mid-batch: the supervisor rebuilds
        and every job is answered exactly once, in id order."""
        specs = [JobSpec(id=i, payload=("sleep", i)) for i in range(8)]

        def killer(pool):
            time.sleep(0.1)
            for pid in pool.worker_pids():
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

        metrics = MetricsCollector()
        pool, results = _run(4, specs, metrics=metrics, killer=killer)
        assert [r.id for r in results] == list(range(8))  # no loss, no dup
        assert all(r.status == "ok" for r in results)
        assert pool.workers_lost >= 1
        assert pool.rebuilds >= 1
        assert metrics.counters["service.supervisor.worker_lost"] >= 1
        assert metrics.counters["service.supervisor.pool_rebuilt"] >= 1

    def test_storm_results_identical_to_inline_run(self):
        """The determinism contract under fire: the killed-and-rebuilt
        parallel run answers byte-for-byte what ``jobs=1`` answers."""
        specs = [JobSpec(id=i, payload=("sleep", i)) for i in range(8)]

        def killer(pool):
            time.sleep(0.1)
            for pid in pool.worker_pids():
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

        _, stormed = _run(4, specs, killer=killer)
        _, inline = _run(1, specs)
        assert ([(r.id, r.status, r.value) for r in stormed]
                == [(r.id, r.status, r.value) for r in inline])


class TestHangDetection:
    def test_hung_job_is_quarantined_not_retried(self):
        config = SupervisorConfig(poll_interval_s=0.02, hang_timeout_s=0.3)
        specs = [JobSpec(id=0, payload=("hang", 0))] + [
            JobSpec(id=i, payload=("ok", i)) for i in range(1, 4)]
        pool, results = _run(2, specs, supervisor=config)
        assert [r.id for r in results] == [0, 1, 2, 3]
        hung = results[0]
        assert hung.status == "quarantined"
        assert hung.reason == "hang"
        assert "supervisor" in hung.detail
        assert all(r.status == "ok" for r in results[1:])
        assert pool.hangs == 1


class TestCircuitBreaker:
    def test_poison_job_trips_breaker_into_inline_mode(self):
        """A job that kills whichever worker picks it up forces rebuild
        after rebuild; at ``max_rebuilds`` the breaker opens and the
        survivors -- poison included -- finish inline."""
        config = SupervisorConfig(poll_interval_s=0.02, max_rebuilds=2,
                                  rebuild_window_s=60.0)
        specs = [JobSpec(id=0, payload=("die", os.getpid())),
                 JobSpec(id=1, payload=("ok", 1)),
                 JobSpec(id=2, payload=("ok", 2))]
        metrics = MetricsCollector()
        pool, results = _run(2, specs, supervisor=config, metrics=metrics)
        assert pool.breaker_open
        assert pool.stats()["breaker_open"]
        assert [r.id for r in results] == [0, 1, 2]
        assert results[0].value == "survived-inline"
        assert [r.value for r in results[1:]] == [4, 7]
        assert metrics.counters["service.supervisor.breaker_tripped"] == 1

    def test_breaker_open_pool_keeps_serving_inline(self):
        config = SupervisorConfig(poll_interval_s=0.02, max_rebuilds=1,
                                  rebuild_window_s=60.0)
        specs = [JobSpec(id=0, payload=("die", os.getpid()))]
        pool, _ = _run(2, specs, supervisor=config)
        assert pool.breaker_open
        assert not pool.supervised
        assert pool.worker_pids() == []  # no processes left to lose
        pool._closed = False  # reopen the context-managed pool for a beat
        pool.submit(JobSpec(id=9, payload=("ok", 9)))
        results = pool.drain()
        assert [(r.id, r.value) for r in results] == [(9, 28)]
        pool.close()


class TestInertPassthrough:
    def test_jobs_1_is_an_unsupervised_passthrough(self):
        pool, results = _run(1, [JobSpec(id=i, payload=("ok", i))
                                 for i in range(3)])
        assert not pool.supervised
        assert pool.worker_pids() == []
        assert [(r.id, r.value) for r in results] == [
            (0, 1), (1, 4), (2, 7)]
        assert pool.stats() == {"rebuilds": 0, "workers_lost": 0,
                                "hangs": 0, "breaker_open": False}
