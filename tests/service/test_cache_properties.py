"""Cache-key soundness and hit byte-identity (ISSUE 6 satellite).

Two properties the service's correctness rests on:

1. **soundness** -- any input that can change what the pipeline emits
   (source text, machine, or *any* output-affecting PipelineConfig
   field) changes the cache key, so two different compiles can never
   alias one artifact.  The fingerprint iterates the dataclass fields,
   so a config knob added in a future PR joins the key automatically --
   the test iterates the same fields, so it starts covering the new
   knob on the same day.
2. **hit byte-identity** -- an artifact served from the cache (memory or
   disk) is byte-identical to the compile that seeded it.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsCollector
from repro.resilience.ladder import ResilienceConfig
from repro.sched.candidates import ScheduleLevel
from repro.sched.profiling import BranchProfile
from repro.service import worker
from repro.service.cache import (
    NON_OUTPUT_FIELDS,
    Artifact,
    ArtifactCache,
    cache_key,
    config_fingerprint,
)
from repro.xform.pipeline import PipelineConfig

SOURCE = "int f(int x) { return x + 1; }"


def _variant(name: str, value):
    """A legal value for field ``name`` that differs from ``value``."""
    if isinstance(value, ScheduleLevel):
        others = [lv for lv in ScheduleLevel if lv is not value]
        return others[0]
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if value is None:
        return {
            "profile": BranchProfile(block_counts={"entry.0": 3}, runs=1),
            "resilience": ResilienceConfig(),
        }.get(name, 1)
    raise AssertionError(
        f"no variant rule for PipelineConfig field {name!r} "
        f"(type {type(value).__name__}); teach the soundness test "
        f"about it")


class TestKeySoundness:
    def test_every_output_affecting_field_changes_the_key(self):
        """Flipping any non-excluded PipelineConfig field flips the key."""
        base = PipelineConfig()
        base_key = cache_key(SOURCE, "rs6k", base)
        flipped = []
        for f in dataclasses.fields(PipelineConfig):
            if f.name in NON_OUTPUT_FIELDS:
                continue
            value = getattr(base, f.name)
            variant = dataclasses.replace(
                base, **{f.name: _variant(f.name, value)})
            assert cache_key(SOURCE, "rs6k", variant) != base_key, \
                f"field {f.name!r} did not change the cache key"
            flipped.append(f.name)
        # the fingerprint (and so this test) must track the dataclass
        assert set(flipped) == {
            f.name for f in dataclasses.fields(PipelineConfig)
        } - NON_OUTPUT_FIELDS

    def test_source_machine_level_each_change_the_key(self):
        base = cache_key(SOURCE, "rs6k", PipelineConfig())
        assert cache_key(SOURCE + " ", "rs6k", PipelineConfig()) != base
        assert cache_key(SOURCE, "scalar", PipelineConfig()) != base
        assert cache_key(SOURCE, "rs6k", PipelineConfig(
            level=ScheduleLevel.USEFUL)) != base

    def test_observability_sinks_do_not_change_the_key(self):
        """trace/metrics are proven noninterfering; keying on them would
        make every traced compile a guaranteed miss."""
        from repro.obs.tracer import CollectingTracer

        plain = cache_key(SOURCE, "rs6k", PipelineConfig())
        traced = cache_key(SOURCE, "rs6k", PipelineConfig(
            trace=CollectingTracer(), metrics=MetricsCollector()))
        assert traced == plain

    def test_fingerprint_is_json_stable(self):
        """The fingerprint serializes deterministically -- the property
        the SHA-256 address depends on."""
        config = PipelineConfig(resilience=ResilienceConfig(),
                                profile=BranchProfile(runs=2))
        one = json.dumps(config_fingerprint(config), sort_keys=True)
        two = json.dumps(config_fingerprint(config), sort_keys=True)
        assert one == two

    @given(st.text(max_size=80), st.text(max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_distinct_sources_never_collide(self, a, b):
        config = PipelineConfig()
        key_a = cache_key(a, "rs6k", config)
        key_b = cache_key(b, "rs6k", config)
        assert (key_a == key_b) == (a == b)


class TestHitByteIdentity:
    def _compile(self, source=SOURCE):
        return worker.compile_request({
            "source": source, "machine": "rs6k", "level": "speculative",
            "config": {}, "resilient": False})

    def test_recompile_is_byte_identical(self):
        """The invariant caching rests on: compiling one payload twice
        yields the same bytes (no wall-clock state in the artifact)."""
        first, second = self._compile(), self._compile()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_memory_hit_returns_the_seeded_artifact(self):
        cache = ArtifactCache(max_entries=4)
        artifact = Artifact.from_json(self._compile())
        key = cache_key(SOURCE, "rs6k", PipelineConfig())
        assert cache.get(key) is None  # cold
        cache.put(key, artifact)
        hit = cache.get(key)
        assert hit.to_json() == artifact.to_json()
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_hit_round_trips_byte_identically(self, tmp_path):
        """A fresh cache over the same disk store serves the same bytes
        the seeding compile produced -- warm artifacts survive restarts."""
        artifact = Artifact.from_json(self._compile())
        key = cache_key(SOURCE, "rs6k", PipelineConfig())
        seeder = ArtifactCache(max_entries=4, disk_dir=str(tmp_path))
        seeder.put(key, artifact)

        restarted = ArtifactCache(max_entries=4, disk_dir=str(tmp_path))
        hit = restarted.get(key)
        assert hit is not None
        assert json.dumps(hit.to_json(), sort_keys=True) == \
            json.dumps(artifact.to_json(), sort_keys=True)
        assert restarted.hits == 1

    def test_corrupt_disk_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ArtifactCache(max_entries=4, disk_dir=str(tmp_path))
        key = cache_key(SOURCE, "rs6k", PipelineConfig())
        (tmp_path / f"{key}.json").write_text("{ truncated")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_lru_evicts_the_coldest_entry(self):
        cache = ArtifactCache(max_entries=2)
        a, b, c = (Artifact(assembly={"f": name}) for name in "abc")
        cache.put("ka", a)
        cache.put("kb", b)
        assert cache.get("ka") is a  # touch: "kb" is now coldest
        cache.put("kc", c)
        assert len(cache) == 2
        assert cache.get("kb") is None  # evicted
        assert cache.get("ka") is a
        assert cache.get("kc") is c

    def test_metrics_counters_track_hits_and_misses(self):
        metrics = MetricsCollector()
        cache = ArtifactCache(max_entries=2, metrics=metrics)
        cache.get("missing")
        cache.put("k", Artifact())
        cache.get("k")
        assert metrics.counters["service.cache.miss"] == 1
        assert metrics.counters["service.cache.hit"] == 1
        assert cache.hit_rate == pytest.approx(0.5)
