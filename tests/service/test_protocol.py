"""Service-boundary protocol hardening (ISSUE 9 satellite).

The malformed-request matrix -- unknown fields, bad JSON, non-object
frames, non-overridable config keys, oversized frames -- must come back
as *per-request typed errors in batch order*, over **both** transports
(stdin stream and Unix socket), without costing the session or the
daemon.  Plus the admission-control layer: watermark hysteresis at the
unit level, and a flood integration test showing fast-fail
``overloaded`` (default) versus verified ``degraded`` responses
(``--degrade-under-load``).
"""

import io
import json
import socket
import threading
import time

import pytest

from repro.service import AdmissionController, Daemon, ServeConfig
from repro.obs.metrics import MetricsCollector

_OK_SOURCE = "int f(int x) { return x + 1; }"

#: (request line, expected status, expected reason-or-None)
_MATRIX = [
    (json.dumps({"id": 0, "source": _OK_SOURCE}), "ok", None),
    (json.dumps({"id": 1, "source": _OK_SOURCE, "wat": 1}),
     "error", "unknown-field"),
    ('{"id": 2, "source": unterminated', "error", "bad-json"),
    ("[1, 2, 3]", "error", "bad-json"),
    (json.dumps({"id": 4, "source": _OK_SOURCE,
                 "config": {"metrics": True}}), "error", "unknown-field"),
    (json.dumps({"id": 5}), "error", "bad-request"),
    (json.dumps({"id": 6, "source": 42}), "error", "bad-request"),
    (json.dumps({"id": 7, "source": _OK_SOURCE, "machine": "cray"}),
     "error", "bad-request"),
    (json.dumps({"id": 8, "source": _OK_SOURCE, "chaos_hang_s": 1.0}),
     "error", "bad-request"),
    (json.dumps({"id": 9, "source": _OK_SOURCE}), "cache-hit", None),
]


def _assert_matrix_answers(responses):
    assert len(responses) == len(_MATRIX)
    for pos, (response, (_line, status, reason)) in enumerate(
            zip(responses, _MATRIX)):
        assert response["status"] == status, (pos, response)
        if reason is not None:
            assert response["reason"] == reason, (pos, response)
        if status == "error":
            assert "error" in response  # human-readable detail
    # batch order is preserved; parseable requests echo their id and
    # unparseable ones fall back to the daemon's request ordinal (which,
    # on a fresh daemon, coincides with the position we sent them at)
    assert [r["id"] for r in responses] == list(range(10))


def _socket_daemon(config, sock_path):
    daemon = Daemon(config)
    ready = threading.Event()
    thread = threading.Thread(target=daemon.serve_socket,
                              args=(str(sock_path),),
                              kwargs={"ready": ready}, daemon=True)
    thread.start()
    assert ready.wait(10.0), "daemon socket never came up"
    return daemon, thread


def _shutdown(daemon, thread):
    daemon.request_shutdown()
    thread.join(timeout=15.0)
    assert not thread.is_alive(), "daemon failed to shut down"
    daemon.close()


def _recv_all(sk):
    sk.settimeout(30.0)
    data = b""
    while True:
        chunk = sk.recv(65536)
        if not chunk:
            break
        data += chunk
    return [json.loads(line) for line in data.decode("utf-8").splitlines()
            if line.strip()]


class TestMalformedMatrixOverStdin:
    def test_matrix_is_typed_in_order_and_session_survives(self):
        text = "".join(line + "\n" for line in _MATRIX_LINES())
        out = io.StringIO()
        with Daemon(ServeConfig(jobs=1)) as daemon:
            daemon.serve_stream(io.StringIO(text), out)
            responses = [json.loads(l)
                         for l in out.getvalue().splitlines()]
            _assert_matrix_answers(responses)
            # the same daemon keeps serving after the bad batch
            follow = daemon.serve_batch_lines(
                [json.dumps({"id": 99, "source": _OK_SOURCE})])
            assert follow[0]["status"] == "cache-hit"

    def test_oversized_line_is_typed_and_framing_survives(self):
        huge = json.dumps({"id": 0, "source": "int f(int x) { return "
                           + "x + 1 + 1 + 1 + 1 + 1" * 40 + "; }"})
        ok = json.dumps({"id": 1, "source": _OK_SOURCE})
        out = io.StringIO()
        config = ServeConfig(jobs=1, max_request_bytes=128)
        with Daemon(config) as daemon:
            daemon.serve_stream(io.StringIO(huge + "\n" + ok + "\n"), out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [r["status"] for r in responses] == ["error", "ok"]
        assert responses[0]["reason"] == "oversized"
        assert responses[1]["id"] == 1


class TestMalformedMatrixOverSocket:
    def test_matrix_is_typed_in_order_over_a_socket(self, tmp_path):
        daemon, thread = _socket_daemon(ServeConfig(jobs=1),
                                        tmp_path / "serve.sock")
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
                sk.connect(str(tmp_path / "serve.sock"))
                payload = "".join(line + "\n" for line in _MATRIX_LINES())
                sk.sendall(payload.encode("utf-8"))
                sk.shutdown(socket.SHUT_WR)
                responses = _recv_all(sk)
        finally:
            _shutdown(daemon, thread)
        _assert_matrix_answers(responses)

    def test_slow_loris_costs_only_its_session(self, tmp_path):
        """A client that stalls mid-line past ``--read-deadline`` gets
        its completed requests answered and its session closed; the next
        client is served normally."""
        config = ServeConfig(jobs=1, read_deadline_s=0.3)
        daemon, thread = _socket_daemon(config, tmp_path / "serve.sock")
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
                sk.connect(str(tmp_path / "serve.sock"))
                sk.sendall((json.dumps({"id": 0, "source": _OK_SOURCE})
                            + "\n").encode("utf-8"))
                sk.sendall(b'{"id": 1, "source"')  # ...and stall forever
                responses = _recv_all(sk)  # deadline turns into our EOF
            assert [(r["id"], r["status"]) for r in responses] \
                == [(0, "ok")]
            # the listener survived; a well-behaved session still works
            deadline = time.monotonic() + 20.0
            while True:
                try:
                    sk = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sk.connect(str(tmp_path / "serve.sock"))
                    break
                except (ConnectionRefusedError, FileNotFoundError):
                    sk.close()
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            with sk:
                sk.sendall((json.dumps({"id": 2, "source": _OK_SOURCE})
                            + "\n").encode("utf-8"))
                sk.shutdown(socket.SHUT_WR)
                responses = _recv_all(sk)
            assert [(r["id"], r["status"]) for r in responses] \
                == [(2, "cache-hit")]
        finally:
            _shutdown(daemon, thread)


def _MATRIX_LINES():
    return [line for line, _status, _reason in _MATRIX]


class TestAdmissionHysteresis:
    def test_watermark_hysteresis(self):
        metrics = MetricsCollector()
        admission = AdmissionController(4, metrics=metrics)
        assert admission.low_water == 2  # defaults to high // 2
        assert not admission.update(4)   # at high water: still accepting
        assert admission.update(5)       # above: shed
        assert admission.update(3)       # between the marks: keep shedding
        assert not admission.update(2)   # at low water: recover
        assert admission.update(9)       # flap again
        assert admission.sheds == 2
        assert metrics.counters["service.admission.shed_start"] == 2
        assert metrics.counters["service.admission.shed_stop"] == 1

    def test_bad_watermarks_are_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4, 4)
        with pytest.raises(ValueError):
            AdmissionController(4, 9)


class TestOverloadIntegration:
    def _flood(self, n):
        return "".join(
            json.dumps({"id": i, "source":
                        f"int flood{i}(int x) {{ return x * {i + 2}; }}"})
            + "\n" for i in range(n))

    def test_flood_fast_fails_typed_overloaded(self):
        config = ServeConfig(jobs=1, batch_size=1, high_water=2,
                             low_water=1)
        out = io.StringIO()
        with Daemon(config) as daemon:
            daemon.serve_stream(io.StringIO(self._flood(8)), out)
            counters = daemon.metrics.counters
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert len(responses) == 8  # every request answered, in order
        assert [r["id"] for r in responses] == list(range(8))
        statuses = [r["status"] for r in responses]
        assert "overloaded" in statuses
        shed = [r for r in responses if r["status"] == "overloaded"]
        assert all(r["reason"] == "queue-depth" for r in shed)
        assert all("retry" in r["error"] for r in shed)
        assert counters["service.admission.shed_start"] >= 1
        assert counters["service.status.overloaded"] == len(shed)

    def test_degrade_under_load_serves_verified_rung_down(self):
        config = ServeConfig(jobs=1, batch_size=1, high_water=2,
                             low_water=1, degrade_under_load=True)
        out = io.StringIO()
        with Daemon(config) as daemon:
            daemon.serve_stream(io.StringIO(self._flood(8)), out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert len(responses) == 8
        statuses = [r["status"] for r in responses]
        assert "degraded" in statuses and "overloaded" not in statuses
        shed = [r for r in responses if r["status"] == "degraded"]
        # a degraded answer still carries a real, verified schedule
        assert all(r["reason"] == "overload" and "assembly" in r
                   for r in shed)
