"""Job-layer isolation tests (ISSUE 6 satellite).

The three service-grade guarantees, each exercised on its own:

* backpressure **blocks** producers at the queue bound -- it never drops;
* a deadline expiry quarantines the one job without poisoning the pool;
* a worker crash surfaces as a typed result and the pool keeps serving.

Handlers are module-level so the pool can pickle them by reference.
"""

import threading
import time

import pytest

from repro.service.jobs import (
    CRASHED,
    ERROR,
    OK,
    QUARANTINED,
    JobPool,
    JobSpec,
    JobWorkerError,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_FAST = dict(retry_backoff_s=0.001)


# -- module-level handlers (picklable by reference) ---------------------------

def _double(payload):
    return payload * 2


def _sleep_then_echo(payload):
    time.sleep(payload)
    return payload


def _crash_on_negative(payload):
    if payload < 0:
        raise RuntimeError(f"boom on {payload}")
    return payload


class _TypedFailure(ValueError):
    pass


def _typed_on_negative(payload):
    if payload < 0:
        raise _TypedFailure(f"expected failure on {payload}")
    return payload


# -- construction -------------------------------------------------------------

@pytest.mark.parametrize("jobs", [0, -2])
def test_invalid_jobs_rejected(jobs):
    with pytest.raises(ValueError, match="jobs must be a positive"):
        JobPool(_double, jobs=jobs)


def test_invalid_queue_size_rejected():
    with pytest.raises(ValueError, match="queue_size must be a positive"):
        JobPool(_double, queue_size=0)


# -- the happy path, both shapes ----------------------------------------------

@pytest.mark.parametrize("jobs", [1, 3])
def test_drain_returns_every_job_sorted(jobs):
    with JobPool(_double, jobs=jobs, **_FAST) as pool:
        for index in reversed(range(8)):
            pool.submit(JobSpec(id=index, payload=index))
        results = pool.drain()
    assert [r.id for r in results] == list(range(8))
    assert all(r.status == OK for r in results)
    assert [r.value for r in results] == [2 * i for i in range(8)]


@pytest.mark.parametrize("jobs", [1, 3])
def test_streaming_results_sorted_identically(jobs):
    specs = [JobSpec(id=i, payload=i) for i in range(10)]
    with JobPool(_double, jobs=jobs, queue_size=4, **_FAST) as pool:
        results = sorted(pool.run(specs), key=lambda r: r.id)
    assert [(r.id, r.value) for r in results] == [(i, 2 * i)
                                                 for i in range(10)]


# -- backpressure: blocks, never drops ----------------------------------------

@pytest.mark.slow
def test_backpressure_blocks_producer_and_drops_nothing():
    """With ``queue_size=2`` full of sleeping jobs, a third ``submit``
    blocks until a slot frees -- and every job is still answered."""
    with JobPool(_sleep_then_echo, jobs=2, queue_size=2, **_FAST) as pool:
        pool.submit(JobSpec(id=0, payload=0.4))
        pool.submit(JobSpec(id=1, payload=0.4))

        third_accepted = threading.Event()

        def producer():
            pool.submit(JobSpec(id=2, payload=0.0))
            third_accepted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        # the queue is at its bound: the producer must be blocked
        assert not third_accepted.wait(timeout=0.15)
        # a slot frees once a sleeper finishes; the producer unblocks
        assert third_accepted.wait(timeout=5.0)
        thread.join(timeout=5.0)
        results = pool.drain()
    assert sorted(r.id for r in results) == [0, 1, 2]
    assert all(r.status == OK for r in results)


# -- deadlines: expiry quarantines without poisoning the pool -----------------

@pytest.mark.slow
@pytest.mark.parametrize("jobs", [1, 2])
def test_deadline_expiry_quarantines_only_the_hanging_job(jobs):
    with JobPool(_sleep_then_echo, jobs=jobs, timeout_s=0.15,
                 **_FAST) as pool:
        pool.submit(JobSpec(id=99, payload=30.0))  # the hang
        for index in range(3):
            pool.submit(JobSpec(id=index, payload=0.0))
        results = {r.id: r for r in pool.drain()}

        hang = results[99]
        assert hang.status == QUARANTINED
        assert hang.reason == "timeout"
        assert hang.attempts == 2
        for index in range(3):
            assert results[index].status == OK

        # the pool is not poisoned: it keeps serving new work
        pool.submit(JobSpec(id=100, payload=0.0))
        (after,) = pool.drain()
    assert after.status == OK and after.id == 100


# -- crashes: typed result, pool keeps serving --------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_crash_is_quarantined_and_pool_keeps_serving(jobs):
    with JobPool(_crash_on_negative, jobs=jobs, **_FAST) as pool:
        pool.submit(JobSpec(id=0, payload=-1))  # the crash
        pool.submit(JobSpec(id=1, payload=5))
        results = {r.id: r for r in pool.drain()}

        bad = results[0]
        assert bad.status == QUARANTINED
        assert bad.reason == "crash"
        assert bad.attempts == 2
        assert "boom on -1" in bad.detail
        assert results[1].status == OK

        pool.submit(JobSpec(id=2, payload=7))
        (again,) = pool.drain()
    assert again.status == OK and again.value == 7


@pytest.mark.parametrize("jobs", [1, 2])
def test_failfast_crash_surfaces_as_typed_worker_error(jobs):
    with JobPool(_crash_on_negative, jobs=jobs, quarantine=False,
                 **_FAST) as pool:
        pool.submit(JobSpec(id=9, payload=-3))
        (result,) = pool.drain()
    assert result.status == CRASHED
    assert result.attempts == 1
    with pytest.raises(JobWorkerError) as excinfo:
        result.raise_if_crashed()
    assert excinfo.value.job_id == 9
    assert "boom on -3" in excinfo.value.worker_traceback


@pytest.mark.parametrize("jobs", [1, 2])
def test_typed_errors_reported_once_never_retried(jobs):
    with JobPool(_typed_on_negative, jobs=jobs,
                 typed_errors=(_TypedFailure,), **_FAST) as pool:
        pool.submit(JobSpec(id=0, payload=-2))  # the typed failure
        pool.submit(JobSpec(id=1, payload=2))
        results = {r.id: r for r in pool.drain()}
    typed = results[0]
    assert typed.status == ERROR
    assert typed.reason == "_TypedFailure"
    assert typed.attempts == 1
    assert "expected failure on -2" in typed.detail
    assert results[1].status == OK


def test_submit_after_close_is_refused():
    pool = JobPool(_double, jobs=1)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(JobSpec(id=0, payload=0))
