"""Write-ahead journal: unit coverage plus the crash-recovery property.

ISSUE 9 acceptance criterion, tested against the real CLI: ``kill -9``
a ``repro serve --journal`` process mid-batch, restart it with
``--resume-journal``, feed it the never-accepted tail of the request
file, and the union of responses (pre-kill, replayed, post-restart) is
**byte-identical** per id to an uninterrupted run's -- for ``--jobs 1``
and ``--jobs 4``.  The unit half pins the WAL format itself: torn final
lines are dropped, damage before the tail is a typed
:class:`~repro.service.journal.JournalError`, and completed ``ok``
records carry the artifact that re-seeds the cache on resume.
"""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import Daemon, ServeConfig
from repro.service.journal import Journal, JournalError, load_journal

_SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src")


def _request(i, source=None):
    source = source or f"int g{i}(int x) {{ return x * {i + 2} + {i}; }}"
    return json.dumps({"id": i, "source": source})


# -- unit: the WAL format -----------------------------------------------------

class TestJournalFormat:
    def test_roundtrip_and_incomplete(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        journal = Journal(path)
        journal.record_request(0, _request(0))
        journal.record_done(0, 0, "ok", key="k0", artifact={"ir": "..."})
        journal.record_request(1, _request(1))
        journal.close()
        state = load_journal(path)
        assert state.max_seq == 1
        assert not state.torn_tail
        assert [seq for seq, _ in state.incomplete()] == [1]
        assert state.artifacts == [("k0", {"ir": "..."})]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        journal = Journal(path)
        journal.record_request(0, _request(0))
        journal.record_request(1, _request(1))
        journal.close()
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-5])  # crash mid-write of seq 1
        state = load_journal(path)
        assert state.torn_tail
        assert [seq for seq, _ in state.incomplete()] == [0]
        # resuming truncates the torn bytes before appending
        journal = Journal(path, resume_from=state)
        journal.record_request(2, _request(2))
        journal.close()
        reloaded = load_journal(path)
        assert not reloaded.torn_tail
        assert [seq for seq, _ in reloaded.incomplete()] == [0, 2]

    def test_damage_before_the_tail_is_a_typed_error(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        journal = Journal(path)
        journal.record_request(0, _request(0))
        journal.record_request(1, _request(1))
        journal.close()
        lines = open(path, "rb").read().splitlines()
        lines[0] = lines[0][:8]  # tear a *non-final* record
        open(path, "wb").write(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_missing_journal_is_a_typed_error(self, tmp_path):
        with pytest.raises(JournalError):
            load_journal(str(tmp_path / "nope.wal"))


# -- in-process resume --------------------------------------------------------

class TestResumeReplay:
    def _serve(self, tmp_path, lines, **kwargs):
        path = str(tmp_path / "serve.wal")
        config = ServeConfig(jobs=1, journal_path=path, **kwargs)
        out = io.StringIO()
        with Daemon(config) as daemon:
            daemon.start_journal()
            daemon.serve_stream(
                io.StringIO("".join(l + "\n" for l in lines)), out)
        return path, [json.loads(l) for l in out.getvalue().splitlines()]

    def test_clean_journal_replays_nothing(self, tmp_path):
        path, responses = self._serve(tmp_path, [_request(0)])
        assert [r["status"] for r in responses] == ["ok"]
        config = ServeConfig(jobs=1, journal_path=path,
                             resume_journal=True)
        out = io.StringIO()
        with Daemon(config) as daemon:
            assert daemon.resume_from_journal(out) == 0
        assert out.getvalue() == ""

    def test_incomplete_request_is_replayed(self, tmp_path):
        path, responses = self._serve(tmp_path, [_request(0)])
        # erase the done record: the crash landed between accept and done
        kept = [l for l in open(path, "rb").read().splitlines()
                if json.loads(l)["j"] == "req"]
        open(path, "wb").write(b"\n".join(kept) + b"\n")
        config = ServeConfig(jobs=1, journal_path=path,
                             resume_journal=True)
        out = io.StringIO()
        with Daemon(config) as daemon:
            assert daemon.resume_from_journal(out) == 1
        replayed = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [(r["id"], r["status"]) for r in replayed] == [(0, "ok")]
        # the replay is byte-identical to the original answer
        assert json.dumps(replayed[0], sort_keys=True) \
            == json.dumps(responses[0], sort_keys=True)

    def test_done_artifacts_seed_the_cache(self, tmp_path):
        """A completed compile's artifact rides in its done record, so a
        replayed duplicate becomes a cache hit -- exactly what the
        uninterrupted run would have answered."""
        source = "int dup(int x) { return x + 41; }"
        lines = [_request(0, source), _request(1, source)]
        path, responses = self._serve(tmp_path, lines)
        assert [r["status"] for r in responses] == ["ok", "cache-hit"]
        # keep seq 0's done record, drop seq 1's: the dup was in flight
        kept = [l for l in open(path, "rb").read().splitlines()
                if json.loads(l).get("seq") == 0
                or json.loads(l)["j"] == "req"]
        open(path, "wb").write(b"\n".join(kept) + b"\n")
        config = ServeConfig(jobs=1, journal_path=path,
                             resume_journal=True)
        out = io.StringIO()
        with Daemon(config) as daemon:
            assert daemon.resume_from_journal(out) == 1
            assert daemon.metrics.counters["service.cache.hit"] >= 1
        replayed = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [(r["id"], r["status"]) for r in replayed] \
            == [(1, "cache-hit")]


# -- the acceptance property: kill -9 mid-batch, resume, byte-diff ------------

def _spawn_serve(argv, stdin, **kwargs):
    env = dict(os.environ, PYTHONPATH=_SRC_DIR)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *argv],
        stdin=stdin, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env, **kwargs)


def _wait_for_done_records(path, want, deadline_s=60.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            raw = open(path, "rb").read()
        except OSError:
            raw = b""
        done = sum(1 for l in raw.splitlines() if b'"j": "done"' in l
                   or b'"j":"done"' in l)
        if done >= want:
            return
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {want} done records")


class TestKillNineResume:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_kill_mid_batch_then_resume_is_byte_identical(self, tmp_path,
                                                          jobs):
        lines = [_request(i) for i in range(10)]
        lines.append(_request(10, json.loads(lines[0])["source"]))  # dup
        requests = "".join(l + "\n" for l in lines)
        (tmp_path / "reqs.jsonl").write_text(requests)

        # the uninterrupted reference run
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jobs", str(jobs)],
            input=requests, capture_output=True, text=True,
            env=dict(os.environ, PYTHONPATH=_SRC_DIR), timeout=300)
        clean_by_id = {json.loads(l)["id"]: l.strip()
                       for l in clean.stdout.splitlines() if l.strip()}
        assert sorted(clean_by_id) == list(range(11))

        # run 1: feed 6 requests, kill -9 once a batch is mid-completion
        wal = str(tmp_path / "crash.wal")
        proc = _spawn_serve(["--jobs", str(jobs), "--journal", wal],
                            subprocess.PIPE)
        proc.stdin.write("".join(l + "\n" for l in lines[:6]))
        proc.stdin.flush()
        _wait_for_done_records(wal, 2)
        os.kill(proc.pid, signal.SIGKILL)
        out1, _ = proc.communicate(timeout=60)
        got = {}
        for line in out1.splitlines():
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # the response stream itself may be torn
            got[doc["id"]] = line.strip()

        # requests the WAL never accepted are the client's to resend
        state = load_journal(wal)
        accepted = {json.loads(d["line"])["id"] for d in _req_records(wal)}
        tail = "".join(l + "\n" for l in lines
                       if json.loads(l)["id"] not in accepted)
        (tmp_path / "tail.jsonl").write_text(tail)
        assert state.max_seq >= 0  # the WAL saw real traffic

        # run 2: resume the WAL, then serve the resent tail
        with open(tmp_path / "tail.jsonl") as fh:
            resume = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "--jobs",
                 str(jobs), "--journal", wal, "--resume-journal"],
                stdin=fh, capture_output=True, text=True,
                env=dict(os.environ, PYTHONPATH=_SRC_DIR), timeout=300)
        assert resume.returncode == 0
        for line in resume.stdout.splitlines():
            if not line.strip():
                continue
            doc = json.loads(line)
            if doc["id"] in got:  # a replayed duplicate must not drift
                assert got[doc["id"]] == line.strip()
            got[doc["id"]] = line.strip()

        # the union answers every request, byte-identical to the
        # uninterrupted run
        assert sorted(got) == sorted(clean_by_id)
        for rid, line in clean_by_id.items():
            assert got[rid] == line, f"response {rid} drifted"


def _req_records(path):
    out = []
    for raw in open(path, "rb").read().splitlines():
        try:
            doc = json.loads(raw)
        except ValueError:
            continue
        if doc.get("j") == "req":
            out.append(doc)
    return out
