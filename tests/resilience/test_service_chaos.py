"""The service chaos property: boundary faults never cost the service.

ISSUE 9 tentpole: every seeded fault at the service boundary -- worker
SIGKILLs, wedged workers, vanishing clients, torn journal writes,
split/oversized/cut-off socket frames -- must end as *absorbed* (the
full BSP-certified reference answer set comes back) or as a per-request
*typed error*; a hang, a traceback, or a silently wrong answer is a
property violation.

The fast tier runs one case per fault site plus a small sweep; the
acceptance-sized 50-plan sweep runs in CI via ``repro chaos --service``
and is marked ``slow`` here.
"""

from __future__ import annotations

import pytest

from repro.resilience import (
    run_service_chaos,
    run_service_chaos_case,
    service_plan_for_seed,
)
from repro.resilience.faults import SERVICE_SITES

MASTER_SEED = 1991


def _seed_for_site(site: str) -> int:
    for seed in range(500):
        if service_plan_for_seed(seed).site == site:
            return seed
    raise AssertionError(f"no seed below 500 selects {site}")


def test_every_service_site_is_reachable_by_some_seed():
    assert {service_plan_for_seed(s).site for s in range(500)} \
        == set(SERVICE_SITES)


@pytest.mark.parametrize("site", SERVICE_SITES)
def test_one_case_per_site_holds_the_property(site):
    result = run_service_chaos_case(_seed_for_site(site))
    assert result.plan.site == site
    assert result.outcome in ("absorbed", "typed-error"), result.format()
    assert result.fired


def test_fast_sweep_holds_the_property():
    report = run_service_chaos(6, MASTER_SEED)
    assert report.ok, "\n".join(r.format() for r in report.violations)
    assert len(report.results) == 6
    assert all(r.fired for r in report.results)
    assert "fault plans" in report.summary()


@pytest.mark.slow
def test_acceptance_sweep_50_plans():
    """ISSUE 9 acceptance criterion: a seeded 50-plan sweep with zero
    hangs, miscompiles, or tracebacks."""
    report = run_service_chaos(50, MASTER_SEED)
    assert report.ok, "\n".join(r.format() for r in report.violations)
    assert len(report.results) == 50
