"""The chaos property: injected faults never escape the safety net.

Every case compiles a generated program twice -- clean, then with a
seeded fault armed and the resilient pipeline on -- and demands one of
two outcomes: the compile finishes with a verified (or identity)
schedule whose observable behaviour matches the clean build, or a typed
error is reported.  Tracebacks and surviving miscompiles are property
violations.

The fast sweep here keeps the tier-1 suite honest; the acceptance-sized
200-plan sweep is marked ``slow`` (CI runs a 50-plan smoke via
``repro chaos``).
"""

from __future__ import annotations

import pytest

from repro.resilience import plan_for_seed, run_chaos, run_chaos_case
from repro.resilience.chaos import ChaosReport, ChaosResult
from repro.resilience.faults import SITES
from repro.verify.fuzz import derive_seed

FAST_N = 24
MASTER_SEED = 1991


def _fail_message(report: ChaosReport) -> str:
    return "\n".join(r.format() for r in report.violations)


def test_fast_chaos_sweep_holds_the_property():
    report = run_chaos(FAST_N, MASTER_SEED)
    assert report.ok, _fail_message(report)
    assert len(report.results) == FAST_N
    # the sweep is only meaningful if faults actually trigger
    assert sum(r.fired for r in report.results) >= FAST_N // 2
    assert "fault plans" in report.summary()


def test_every_site_is_reachable_by_some_seed():
    seen = set()
    for index in range(200):
        seen.add(plan_for_seed(derive_seed(MASTER_SEED, index)).site)
        if seen == set(SITES):
            break
    assert seen == set(SITES)


def test_case_seeds_reproduce():
    seed = derive_seed(MASTER_SEED, 3)
    first = run_chaos_case(seed)
    second = run_chaos_case(seed)
    assert first.outcome == second.outcome
    assert first.final_rung == second.final_rung
    assert first.degradations == second.degradations


def test_ddg_corruption_is_caught_not_shipped():
    """A dropped-edge miscompile must be rejected by the verifier (a
    rung descent), never survive into the output: scan the first seeds
    whose plan is ddg.drop-edge and require absorbed-or-typed."""
    checked = 0
    for index in range(400):
        seed = derive_seed(MASTER_SEED, index)
        if plan_for_seed(seed).site != "ddg.drop-edge":
            continue
        result = run_chaos_case(seed)
        assert result.ok, result.format()
        if result.fired and result.outcome == "absorbed":
            # the corrupted schedule was rejected somewhere on the way
            # down; the shipped rung is below the corrupted one
            assert result.degradations >= 1, result.format()
        checked += 1
        if checked == 3:
            break
    assert checked == 3


def test_injected_crash_always_degrades_to_verified_schedule():
    """pass.exception cases must absorb in place (skippable stage) or
    descend rungs -- either way the compile finishes and matches."""
    checked = 0
    for index in range(400):
        seed = derive_seed(MASTER_SEED, index)
        if plan_for_seed(seed).site != "pass.exception":
            continue
        result = run_chaos_case(seed)
        assert result.outcome in ("absorbed", "typed-error"), result.format()
        checked += 1
        if checked == 4:
            break
    assert checked == 4


def test_chaos_result_formatting():
    result = ChaosResult(case_seed=7, plan=plan_for_seed(7),
                         outcome="VIOLATION", detail="boom")
    assert not result.ok
    assert "seed 7" in result.format()
    assert "boom" in result.format()
    report = ChaosReport(master_seed=7, results=[result])
    assert not report.ok
    assert report.violations == [result]
    assert "PROPERTY VIOLATION" in report.summary()


@pytest.mark.slow
def test_acceptance_sweep_200_plans():
    """ISSUE acceptance criterion: the property holds over >= 200 seeded
    fault plans."""
    report = run_chaos(200, MASTER_SEED)
    assert report.ok, _fail_message(report)
    assert sum(r.fired for r in report.results) >= 100
