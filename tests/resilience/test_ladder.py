"""Ladder mechanics and the fail-soft pipeline driver.

The unit half checks the pure ladder functions; the integration half
drives :func:`repro.xform.optimize` with ``resilience`` set and injected
faults, asserting the pipeline lands on the documented rung with the
documented events -- and that the scheduled function still computes the
same answer as the unmodified one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ir import gpr
from repro.machine import rs6k
from repro.resilience import ResilienceConfig, Rung, worst_rung
from repro.resilience.faults import ActiveFault, FaultPlan
from repro.resilience.ladder import ladder_for, rung_config, start_rung
from repro.sched import ScheduleLevel
from repro.xform import PipelineConfig, optimize
from repro.xform.pipeline import PipelineReport

from ..xform.test_rotate import run_sum, two_block_loop

LIVE = frozenset({gpr(3)})


# -- pure ladder functions ----------------------------------------------------

class TestLadder:
    def test_full_ladder_from_speculative(self):
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE)
        assert ladder_for(config) == [Rung.SPECULATIVE, Rung.USEFUL,
                                      Rung.BB, Rung.IDENTITY]

    def test_ladder_from_useful_skips_speculative(self):
        config = PipelineConfig(level=ScheduleLevel.USEFUL)
        assert ladder_for(config) == [Rung.USEFUL, Rung.BB, Rung.IDENTITY]

    def test_no_post_bb_pass_drops_bb_rung(self):
        config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                post_bb_pass=False)
        assert ladder_for(config) == [Rung.SPECULATIVE, Rung.USEFUL,
                                      Rung.IDENTITY]

    def test_start_rung_none_level(self):
        assert start_rung(PipelineConfig(level=ScheduleLevel.NONE)) is Rung.BB
        assert start_rung(PipelineConfig(level=ScheduleLevel.NONE,
                                         post_bb_pass=False)) is Rung.IDENTITY

    def test_rung_config_identity_is_none(self):
        base = PipelineConfig()
        assert rung_config(base, Rung.IDENTITY, fallback=True,
                           verify_on_fallback=True) is None

    def test_rung_config_forces_verify_on_fallback(self):
        base = PipelineConfig(verify=False)
        derived = rung_config(base, Rung.USEFUL, fallback=True,
                              verify_on_fallback=True)
        assert derived.verify
        assert derived.level is ScheduleLevel.USEFUL
        # the original attempt keeps the caller's choice
        first = rung_config(base, Rung.SPECULATIVE, fallback=False,
                            verify_on_fallback=True)
        assert not first.verify

    def test_worst_rung(self):
        assert worst_rung(["speculative", "bb", "useful"]) == "bb"
        assert worst_rung(["speculative"]) == "speculative"
        assert worst_rung([]) == "identity"
        assert worst_rung(["useful", "identity"]) == "identity"


# -- the resilient driver -----------------------------------------------------

def _resilient(func, *, fault=None, **kwargs):
    config = PipelineConfig(
        level=ScheduleLevel.SPECULATIVE,
        resilience=ResilienceConfig(fault=fault, **kwargs))
    return optimize(func, rs6k(), config, live_at_exit=LIVE)


class TestResilientDriver:
    def test_inert_config_stays_on_top_rung(self):
        func = two_block_loop()
        report = _resilient(func)
        assert report.final_rung == "speculative"
        assert [a.outcome for a in report.attempts] == ["ok"]
        assert not report.degraded
        assert not report.degradations
        # the inherited report fields are those of the real attempt
        assert report.first_pass is not None
        assert run_sum(func, 7) == 28

    def test_inert_matches_plain_pipeline_fields(self):
        resilient = _resilient(two_block_loop())
        plain = optimize(two_block_loop(), rs6k(),
                         PipelineConfig(level=ScheduleLevel.SPECULATIVE),
                         live_at_exit=LIVE)
        for f in dataclasses.fields(PipelineReport):
            if f.name == "elapsed_seconds":
                continue
            got = getattr(resilient, f.name)
            want = getattr(plain, f.name)
            assert type(got) is type(want), f.name

    def test_crash_in_global_pass_descends_to_bb(self):
        # global-pass-1 runs on the speculative AND useful rungs, so a
        # persistent crash there burns both and lands on bb scheduling
        fault = ActiveFault(FaultPlan(seed=0, site="pass.exception",
                                      stage="global-pass-1", param=2))
        func = two_block_loop()
        report = _resilient(func, fault=fault)
        assert fault.fired
        assert report.final_rung == "bb"
        assert [(a.rung, a.outcome) for a in report.attempts] == [
            ("speculative", "failed"), ("useful", "failed"), ("bb", "ok")]
        assert report.attempts[0].reason == "injected"
        assert report.degraded
        assert any(e.action == "rung-descent" for e in report.degradations)
        assert run_sum(func, 7) == 28  # still correct after the fallback

    def test_hang_in_bb_post_descends_to_identity(self):
        # bb-post is the only stage of the BB rung, so a persistent hang
        # there burns every scheduled rung and lands on identity
        fault = ActiveFault(FaultPlan(seed=0, site="pass.hang",
                                      stage="bb-post", param=2))
        func = two_block_loop()
        before = [[ins.uid for ins in b.instrs] for b in func.blocks]
        report = _resilient(func, fault=fault)
        assert report.final_rung == "identity"
        assert report.attempts[-1].outcome == "ok"
        assert all(a.reason == "timeout"
                   for a in report.attempts[:-1])
        # identity means the pristine original order, byte for byte
        after = [[ins.uid for ins in b.instrs] for b in func.blocks]
        assert after == before
        assert run_sum(func, 5) == 15

    def test_crash_in_skippable_stage_is_absorbed_in_place(self):
        fault = ActiveFault(FaultPlan(seed=0, site="pass.exception",
                                      stage="unroll", param=2))
        func = two_block_loop()
        report = _resilient(func, fault=fault)
        # no rung descent: the stage was skipped and the rung completed
        assert report.final_rung == "speculative"
        assert not report.degraded
        skips = [e for e in report.degradations if e.action == "pass-skipped"]
        assert len(skips) == 1
        assert skips[0].site == "pass:unroll"
        assert not report.unrolled  # the skipped pass left no trace
        assert run_sum(func, 7) == 28

    def test_zero_program_budget_goes_straight_to_identity(self):
        func = two_block_loop()
        before = [[ins.uid for ins in b.instrs] for b in func.blocks]
        report = _resilient(func, program_budget_s=0.0)
        assert report.final_rung == "identity"
        assert report.attempts[0].reason == "timeout"
        assert [[ins.uid for ins in b.instrs]
                for b in func.blocks] == before

    def test_degradation_events_reach_the_metrics_collector(self):
        from repro.obs import MetricsCollector

        metrics = MetricsCollector()
        fault = ActiveFault(FaultPlan(seed=0, site="pass.exception",
                                      stage="global-pass-2", param=2))
        config = PipelineConfig(
            level=ScheduleLevel.SPECULATIVE, metrics=metrics,
            resilience=ResilienceConfig(fault=fault))
        optimize(two_block_loop(), rs6k(), config, live_at_exit=LIVE)
        assert metrics.counters["resilience.rung_descents"] >= 1
        assert metrics.counters["resilience.functions_degraded"] == 1


class TestStatsRendering:
    def test_format_stats_reports_the_final_rung(self):
        from repro.obs.metrics import MetricsCollector, format_stats

        metrics = MetricsCollector()
        metrics.inc("resilience.rung_descents", 2)
        func = two_block_loop()
        fault = ActiveFault(FaultPlan(seed=0, site="pass.exception",
                                      stage="global-pass-1", param=2))
        report = _resilient(func, fault=fault)
        text = format_stats("t", "rs6k", "speculative",
                            [(func.name, report)], metrics)
        assert "resilience rung: bb" in text
        assert "degradation event" in text
        assert "resilience" in text
        assert "rung descents" in text
