"""Deadlines and the pass/program watchdog.

The watchdog is the only thing standing between a hung pass and a hung
compile, so the tests exercise both delivery paths: the preemptive
SIGALRM alarm that interrupts a loop which never returns, and the
cooperative on-exit check used where alarms are unavailable.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.resilience import BudgetExceeded, Deadline, can_preempt, watchdog
from repro.resilience.budget import PROGRAM_SITE, _stack


def test_deadline_accounting():
    deadline = Deadline(60.0, "pass:test")
    assert deadline.site == "pass:test"
    assert not deadline.expired
    assert 0.0 <= deadline.elapsed < 1.0
    assert deadline.remaining > 59.0
    deadline.check()  # plenty left: no raise
    assert "pass:test" in repr(deadline)


def test_deadline_expiry_and_check():
    deadline = Deadline(0.0, "pass:test")
    assert deadline.expired
    with pytest.raises(BudgetExceeded) as excinfo:
        deadline.check()
    assert excinfo.value.site == "pass:test"
    assert excinfo.value.budget_s == 0.0


def test_watchdog_none_budget_is_a_noop():
    with watchdog(None) as deadline:
        assert deadline is None


def test_watchdog_cooperative_detects_overrun_on_exit():
    with pytest.raises(BudgetExceeded) as excinfo:
        with watchdog(0.01, "pass:slow", preemptive=False):
            time.sleep(0.03)
    assert excinfo.value.site == "pass:slow"
    assert excinfo.value.elapsed_s >= 0.01


def test_watchdog_check_on_exit_false_lets_finished_work_ship():
    # a block that *finished* just past its budget still returns normally
    with watchdog(0.01, "program", preemptive=False, check_on_exit=False):
        time.sleep(0.03)


def test_watchdog_fast_block_passes():
    with watchdog(30.0, "pass:fast"):
        pass
    assert not _stack  # stack restored


@pytest.mark.skipif(not can_preempt(), reason="needs SIGALRM + main thread")
def test_watchdog_preempts_a_hung_loop():
    started = time.monotonic()
    with pytest.raises(BudgetExceeded) as excinfo:
        with watchdog(0.05, "pass:hung"):
            while True:  # never returns without preemption
                pass
    assert excinfo.value.site == "pass:hung"
    assert time.monotonic() - started < 5.0
    assert not _stack
    # the previous handler is restored once the stack drains
    assert signal.getsignal(signal.SIGALRM) in (signal.SIG_DFL,
                                                signal.SIG_IGN,
                                                signal.default_int_handler)


@pytest.mark.skipif(not can_preempt(), reason="needs SIGALRM + main thread")
def test_expired_outer_deadline_outranks_inner():
    # program budget exhausted while a pass still has time: the program
    # site must win (a function out of budget is not saved by its pass)
    program = Deadline(0.05, PROGRAM_SITE)
    with pytest.raises(BudgetExceeded) as excinfo:
        with watchdog(program, PROGRAM_SITE, check_on_exit=False):
            with watchdog(30.0, "pass:inner"):
                while True:
                    pass
    assert excinfo.value.site == PROGRAM_SITE


def test_shared_deadline_spans_blocks():
    deadline = Deadline(0.04, PROGRAM_SITE)
    with watchdog(deadline, PROGRAM_SITE, preemptive=False,
                  check_on_exit=False):
        pass  # first attempt: cheap
    time.sleep(0.05)
    assert deadline.expired  # second attempt would see the spent budget
    with pytest.raises(BudgetExceeded):
        with watchdog(deadline, PROGRAM_SITE, preemptive=False):
            pass
