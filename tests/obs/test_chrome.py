"""Chrome-trace export: document shape, lanes, determinism."""

import json

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.obs.chrome import CYCLE_US, chrome_trace, write_chrome_trace
from repro.obs.events import (
    BlockBegin,
    BlockEnd,
    CycleAdvance,
    FunctionBegin,
    FunctionEnd,
    Issue,
    MotionRecorded,
    RegionSkipped,
    SpeculationRejected,
)
from repro.obs.tracer import CollectingTracer
from repro.sched.candidates import ScheduleLevel
from repro.xform.pipeline import PipelineConfig

SMALL_TRACE = [
    FunctionBegin(function="f", level="useful"),
    BlockBegin(label="B", carry_cycles=None),
    CycleAdvance(label="B", cycle=0, ready=2),
    Issue(label="B", cycle=0, uid=1, opcode="AI", unit="fixed", home="B",
          klass="own", exec_cycles=1),
    Issue(label="B", cycle=0, uid=2, opcode="C", unit="fixed", home="C",
          klass="useful", exec_cycles=3),
    MotionRecorded(uid=2, opcode="C", src="C", dst="B", speculative=False,
                   duplicated_into=()),
    SpeculationRejected(label="B", uid=3, opcode="LR", home="C",
                        regs=("r4",)),
    RegionSkipped(header="L.9", reason="too-large"),
    BlockEnd(label="B", cycles=4),
    FunctionEnd(function="f", elapsed_ms=1.0),
]


def _minmax_events():
    source = open("examples/minmax.c").read()
    trace = CollectingTracer()
    compile_c(source, machine=CONFIGS["rs6k"](),
              level=ScheduleLevel.SPECULATIVE,
              config=PipelineConfig(trace=trace))
    return trace.events


def test_document_shape():
    doc = chrome_trace(SMALL_TRACE)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    for entry in doc["traceEvents"]:
        assert entry["ph"] in "BEXiCM"
        assert entry["pid"] == 1
        if entry["ph"] not in ("M", "C"):
            assert isinstance(entry["tid"], int)
        if entry["ph"] != "M":
            assert entry["ts"] >= 0


def test_balanced_begin_end_frames():
    doc = chrome_trace(SMALL_TRACE)
    phs = [e["ph"] for e in doc["traceEvents"]]
    assert phs.count("B") == phs.count("E")


def test_issue_slices_land_in_unit_lanes():
    doc = chrome_trace(SMALL_TRACE)
    lanes = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert lanes["pipeline"] == 0
    assert "unit fixed" in lanes
    issues = [e for e in doc["traceEvents"] if e.get("cat") == "issue"]
    assert len(issues) == 2
    for slice_ in issues:
        assert slice_["tid"] == lanes["unit fixed"]
        assert slice_["dur"] >= CYCLE_US


def test_block_slice_spans_its_cycles():
    doc = chrome_trace(SMALL_TRACE)
    block = next(e for e in doc["traceEvents"] if e.get("cat") == "block")
    assert block["ph"] == "X"
    assert block["dur"] == 4 * CYCLE_US
    assert block["args"]["cycles"] == 4


def test_counter_track_reports_ready_pressure():
    doc = chrome_trace(SMALL_TRACE)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters and counters[0]["args"] == {"ready": 2}


def test_instants_for_motions_vetoes_and_skips():
    doc = chrome_trace(SMALL_TRACE)
    instants = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
    assert "I2 C C->B" in instants
    assert "I3 LR vetoed (live-on-exit)" in instants
    assert "region L.9 skipped: too-large" in instants


def test_full_compile_trace_is_deterministic_and_serialisable(tmp_path):
    doc_a = chrome_trace(_minmax_events())
    doc_b = chrome_trace(_minmax_events())
    # elapsed_ms never reaches the chrome doc, so reruns are identical
    assert doc_a == doc_b
    path = tmp_path / "trace.json"
    write_chrome_trace(_minmax_events(), str(path))
    loaded = json.loads(path.read_text())
    assert loaded == doc_a
    assert len(loaded["traceEvents"]) > 50
