"""Tracer sinks: null, collecting, JSONL, tee; JSONL interchange."""

import io
import json

from repro.obs.events import CycleAdvance, Issue, RegionSkipped
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    TeeTracer,
    Tracer,
    dump_jsonl,
    read_jsonl,
)

EVENTS = [
    RegionSkipped(header="L.9", reason="too-large"),
    CycleAdvance(label="B", cycle=0, ready=2),
    Issue(label="B", cycle=0, uid=1, opcode="AI", unit="fixed", home="B",
          klass="own", exec_cycles=1),
]


def test_null_tracer_is_disabled_singleton():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    NULL_TRACER.emit(EVENTS[0])  # accepted and dropped
    NULL_TRACER.close()


def test_sinks_satisfy_the_protocol():
    for sink in (NULL_TRACER, CollectingTracer(),
                 JsonlTracer(io.StringIO()), TeeTracer()):
        assert isinstance(sink, Tracer)


def test_collecting_tracer_preserves_order_and_filters():
    sink = CollectingTracer()
    for event in EVENTS:
        sink.emit(event)
    assert sink.events == EVENTS
    assert sink.of_kind("cycle") == [EVENTS[1]]
    assert sink.of_kind("nope") == []


def test_jsonl_tracer_writes_one_valid_object_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlTracer(str(path)) as sink:
        for event in EVENTS:
            sink.emit(event)
    lines = path.read_text().splitlines()
    assert len(lines) == len(EVENTS)
    for line, event in zip(lines, EVENTS):
        assert json.loads(line) == event.to_dict()


def test_jsonl_tracer_on_borrowed_stream_does_not_close_it():
    stream = io.StringIO()
    sink = JsonlTracer(stream)
    sink.emit(EVENTS[0])
    sink.close()
    assert not stream.closed  # flushed, not closed
    assert stream.getvalue().count("\n") == 1


def test_read_jsonl_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    dump_jsonl(EVENTS, str(path))
    assert list(read_jsonl(str(path))) == EVENTS
    # also from an open stream / iterable of lines
    assert list(read_jsonl(io.StringIO(path.read_text()))) == EVENTS


def test_read_jsonl_skips_blank_lines():
    text = "\n" + json.dumps(EVENTS[0].to_dict()) + "\n\n"
    assert list(read_jsonl(io.StringIO(text))) == [EVENTS[0]]


def test_tee_tracer_fans_out_in_order():
    a, b = CollectingTracer(), CollectingTracer()
    tee = TeeTracer(a, b)
    for event in EVENTS:
        tee.emit(event)
    assert a.events == EVENTS
    assert b.events == EVENTS
    tee.close()
