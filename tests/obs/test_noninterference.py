"""The observability layer must never change what the compiler produces.

The tentpole contract: compiling with the no-op tracer and compiling with
a real JSONL tracer + metrics collector yield byte-identical assembly, at
every scheduling level on every machine model.  Anything else means a
trace-guarded branch leaked into scheduling decisions.
"""

import io

import pytest

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.obs import CollectingTracer, JsonlTracer, MetricsCollector, TeeTracer
from repro.sched.candidates import ScheduleLevel
from repro.xform.pipeline import PipelineConfig

SOURCE = """
int minmax(int a[], int n, int out[]) {
    int min = a[0]; int max = min; int i = 1;
    while (i < n) {
        int u = a[i]; int v = a[i+1];
        if (u > v) { if (u > max) max = u; if (v < min) min = v; }
        else       { if (v > max) max = v; if (u < min) min = u; }
        i = i + 2;
    }
    out[0] = min; out[1] = max; return 0;
}
"""


def _assembly(level, machine, config=None):
    config = config or PipelineConfig(level=level)
    result = compile_c(SOURCE, machine=CONFIGS[machine](), level=level,
                       config=config)
    return "\n\n".join(unit.assembly() for unit in result)


@pytest.mark.parametrize("machine", sorted(CONFIGS))
@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_tracing_never_changes_the_assembly(level, machine):
    baseline = _assembly(level, machine)
    stream = io.StringIO()
    traced = _assembly(level, machine, PipelineConfig(
        level=level,
        trace=TeeTracer(JsonlTracer(stream), CollectingTracer()),
        metrics=MetricsCollector(),
    ))
    assert traced == baseline
    assert stream.getvalue()  # the trace actually recorded something


def test_duplication_and_rename_paths_are_also_clean():
    """Exercise the optional scheduler paths (Definition 6 duplication,
    rename-ahead) under tracing too."""
    for kwargs in ({"allow_duplication": True}, {"rename_ahead": True}):
        level = ScheduleLevel.SPECULATIVE
        baseline = _assembly(level, "rs6k", PipelineConfig(level=level,
                                                           **kwargs))
        traced = _assembly(level, "rs6k", PipelineConfig(
            level=level, trace=CollectingTracer(),
            metrics=MetricsCollector(), **kwargs))
        assert traced == baseline


def test_trace_replay_is_deterministic():
    """Two traced compilations of the same source produce the same event
    stream (modulo wall-clock elapsed_ms fields)."""
    def events():
        trace = CollectingTracer()
        compile_c(SOURCE, machine=CONFIGS["rs6k"](),
                  level=ScheduleLevel.SPECULATIVE,
                  config=PipelineConfig(trace=trace))
        return trace.events

    def scrub(stream):
        return [e.to_dict() | {"elapsed_ms": None}
                if "elapsed_ms" in e.to_dict() else e.to_dict()
                for e in stream]

    assert scrub(events()) == scrub(events())
