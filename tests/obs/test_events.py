"""Event taxonomy: dict round-trips, registry completeness, stability."""

import dataclasses
import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    CandidateBlocksComputed,
    CycleAdvance,
    Issue,
    MotionRecorded,
    PhaseEnd,
    PriorityDecision,
    RegionEnter,
    SpeculationRejected,
    TraceEvent,
    UnitOccupancy,
    event_from_dict,
)

SAMPLES = [
    RegionEnter(header="LH.1", region_kind="loop", level="speculative",
                blocks=("LH.1", "L.4", "L.7")),
    CandidateBlocksComputed(label="LH.1", equiv=("CL.9",),
                            speculative=("BL2", "CL.4")),
    CycleAdvance(label="LH.1", cycle=3, ready=4),
    Issue(label="LH.1", cycle=3, uid=15, opcode="C", unit="fixed",
          home="L.4", klass="speculative", exec_cycles=1),
    UnitOccupancy(label="LH.1", cycle=3, used={"fixed": 2, "branch": 1},
                  issued=3),
    PriorityDecision(label="LH.1", cycle=3, winner_uid=15, runner_up_uid=8,
                     step="delay-heuristic"),
    SpeculationRejected(label="L.4", uid=17, opcode="LR", home="L.7",
                        regs=("r4",)),
    MotionRecorded(uid=15, opcode="C", src="L.4", dst="LH.1",
                   speculative=True, duplicated_into=()),
    PhaseEnd(function="minmax", phase="global-pass-1", elapsed_ms=2.5),
]


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_round_trip(event):
    rebuilt = event_from_dict(event.to_dict())
    assert rebuilt == event
    assert type(rebuilt) is type(event)


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_to_dict_is_json_ready(event):
    text = json.dumps(event.to_dict())
    assert json.loads(text)["ev"] == event.kind


def test_registry_covers_every_concrete_event():
    concrete = {cls for cls in TraceEvent.__subclasses__()}
    assert set(EVENT_TYPES.values()) == concrete
    for kind, cls in EVENT_TYPES.items():
        assert cls.kind == kind


def test_kinds_are_unique():
    kinds = [cls.kind for cls in TraceEvent.__subclasses__()]
    assert len(kinds) == len(set(kinds))


def test_events_are_frozen():
    event = CycleAdvance(label="B", cycle=0, ready=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        event.cycle = 1


def test_to_dict_converts_tuples_to_lists():
    event = RegionEnter(header="H", region_kind="loop", level="useful",
                        blocks=("a", "b"))
    assert event.to_dict()["blocks"] == ["a", "b"]
    # ...and from_dict restores tuples so events stay hashable/comparable
    assert event_from_dict(event.to_dict()).blocks == ("a", "b")


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        event_from_dict({"ev": "no-such-event"})
