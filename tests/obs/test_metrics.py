"""MetricsCollector: counters, series, timers, merge, and the report."""

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsCollector,
    NullMetrics,
    format_stats,
)


def test_null_metrics_is_disabled_and_inert():
    assert isinstance(NULL_METRICS, NullMetrics)
    assert NULL_METRICS.enabled is False
    NULL_METRICS.inc("x")
    NULL_METRICS.observe("x", 3)
    with NULL_METRICS.phase("p"):
        pass


def test_counters():
    m = MetricsCollector()
    m.inc("a")
    m.inc("a", 4)
    assert m.counters["a"] == 5
    assert m.counters["missing"] == 0


def test_series_mean_and_peak():
    m = MetricsCollector()
    for value in (2, 7, 3):
        m.observe("ready", value)
    count, total, peak = m.series["ready"]
    assert (count, total, peak) == (3, 12, 7)
    assert m.mean("ready") == 4.0
    assert m.peak("ready") == 7
    assert m.mean("absent") == 0.0
    assert m.peak("absent") == 0.0


def test_phase_timer_accumulates_per_name():
    m = MetricsCollector()
    with m.phase("p"):
        pass
    first = m.timers["p"]
    with m.phase("p"):
        pass
    assert m.timers["p"] >= first
    assert set(m.timers) == {"p"}


def test_phase_timer_records_on_exception():
    m = MetricsCollector()
    try:
        with m.phase("p"):
            raise RuntimeError
    except RuntimeError:
        pass
    assert "p" in m.timers


def test_merge_folds_counters_timers_series():
    a, b = MetricsCollector(), MetricsCollector()
    a.inc("n", 2)
    b.inc("n", 3)
    b.inc("only-b")
    a.observe("s", 10)
    b.observe("s", 4)
    b.observe("s", 4)
    with a.phase("t"):
        pass
    with b.phase("t"):
        pass
    a.merge(b)
    assert a.counters["n"] == 5
    assert a.counters["only-b"] == 1
    assert a.series["s"] == (3, 18, 10)
    assert a.timers["t"] > 0


def test_summary_is_json_shaped():
    m = MetricsCollector()
    m.inc("c", 2)
    m.observe("s", 4)
    with m.phase("t"):
        pass
    summary = m.summary()
    assert summary["counters"] == {"c": 2}
    assert summary["series"]["s"] == {"n": 1, "mean": 4.0, "max": 4}
    assert "t" in summary["timers_ms"]


class _Sweep:
    def __init__(self, motions):
        self.motions = motions
        self.regions = []


class _Motion:
    def __init__(self, speculative=False, duplicated=False):
        self.speculative = speculative
        self.duplicated = duplicated


class _Report:
    def __init__(self):
        self.first_pass = _Sweep([_Motion(), _Motion(speculative=True)])
        self.second_pass = _Sweep([_Motion()])
        self.bb_cycles = {"a": 3, "b": 2}
        self.elapsed_seconds = 0.004


def test_format_stats_report():
    m = MetricsCollector()
    m.inc("sched.candidates.speculative", 5)
    m.inc("sched.motions.useful", 2)
    m.inc("sched.motions.speculative", 1)
    m.inc("sched.speculation.rejected_live", 3)
    for value in (2, 4):
        m.observe("sched.ready", value)
    with m.phase("global-pass-1"):
        pass
    text = format_stats("demo.c", "rs6k", "speculative", [("f", _Report())],
                        m)
    assert "scheduling report: demo.c" in text
    assert "function f" in text
    # total row: 3 motions, 2 useful, 1 speculative
    assert any(line.split() == ["total", "3", "2", "1", "0"]
               for line in text.splitlines())
    assert "post-pass block cycles: 5 total over 2 blocks" in text
    assert "speculation rate" in text
    assert "33.3%" in text
    assert "avg 3.00" in text and "max 4" in text
    assert "global-pass-1" in text


def test_format_stats_without_metrics_only_tables():
    text = format_stats("demo.c", "rs6k", "useful", [("f", _Report())])
    assert "speculation" not in text
    assert "function f" in text


def test_format_stats_soa_core_block():
    m = MetricsCollector()
    m.inc("sched.soa.packed_keys", 43)
    m.inc("sched.soa.dense_bytes", 760)
    m.inc("sched.soa.mask_queries", 10)
    m.inc("sched.soa.mask_updates", 7)
    m.observe("sched.soa.intern_ms", 0.5)
    m.observe("sched.soa.intern_ms", 0.1)
    text = format_stats("demo.c", "rs6k", "speculative", [("f", _Report())],
                        m)
    assert "struct-of-arrays core" in text
    assert "priority keys packed to ints" in text
    assert "dense-table bytes interned" in text
    assert "liveness queries from bitmask" in text
    assert "interning passes" in text
    assert "0.60 ms total, max 0.50 ms" in text
    # the block is omitted entirely when the SoA engine never ran
    assert "struct-of-arrays" not in format_stats(
        "demo.c", "rs6k", "speculative", [("f", _Report())],
        MetricsCollector())
