"""Property-based semantic preservation.

The strongest invariant of the whole system: for ANY program, the BASE,
USEFUL and SPECULATIVE pipelines (with unrolling, rotation, renaming and
both schedulers enabled) must compute exactly what the raw, unscheduled
lowering computes -- same return value, same final memory.

Random mini-C programs are generated with bounded loops (so execution
always terminates) and masked array indices (so accesses stay in range).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ScheduleLevel, compile_c, PipelineConfig, rs6k
from repro.xform import PipelineConfig as PC

ARRAY_LEN = 16

_counter = itertools.count()


@st.composite
def expressions(draw, names: list[str], depth: int = 2) -> str:
    choices = ["num", "var"]
    if depth > 0:
        choices += ["binop", "array", "cmp", "unary"]
    kind = draw(st.sampled_from(choices))
    if kind == "num":
        return str(draw(st.integers(-9, 9)))
    if kind == "var":
        return draw(st.sampled_from(names))
    if kind == "array":
        idx = draw(expressions(names, depth - 1))
        return f"a[({idx}) & {ARRAY_LEN - 1}]"
    if kind == "unary":
        op = draw(st.sampled_from(["-", "~"]))
        return f"{op}({draw(expressions(names, depth - 1))})"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        lhs = draw(expressions(names, depth - 1))
        rhs = draw(expressions(names, depth - 1))
        return f"(({lhs}) {op} ({rhs}))"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(expressions(names, depth - 1))
    rhs = draw(expressions(names, depth - 1))
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def statements(draw, names: list[str], targets: list[str],
               depth: int = 2) -> list[str]:
    """``names`` may be read; only ``targets`` may be assigned (loop
    variables are readable but never assignable, so every loop provably
    terminates)."""
    out: list[str] = []
    n = draw(st.integers(1, 4))
    for _ in range(n):
        kinds = ["assign", "astore"]
        if depth > 0:
            kinds += ["if", "loop"]
        kind = draw(st.sampled_from(kinds))
        if kind == "assign":
            target = draw(st.sampled_from(targets))
            out.append(f"{target} = {draw(expressions(names))};")
        elif kind == "astore":
            idx = draw(expressions(names, 1))
            out.append(
                f"a[({idx}) & {ARRAY_LEN - 1}] = {draw(expressions(names))};")
        elif kind == "if":
            cond = draw(expressions(names))
            then = draw(statements(names, targets, depth - 1))
            has_else = draw(st.booleans())
            out.append(f"if ({cond}) {{ " + " ".join(then) + " }"
                       + (" else { "
                          + " ".join(draw(statements(names, targets,
                                                     depth - 1)))
                          + " }" if has_else else ""))
        else:
            trip = draw(st.integers(1, 4))
            loop_var = f"k{next(_counter)}"
            body = draw(statements(names + [loop_var], targets, depth - 1))
            out.append(
                f"for (int {loop_var} = 0; {loop_var} < {trip}; "
                f"{loop_var}++) {{ " + " ".join(body) + " }")
    return out


@st.composite
def programs(draw) -> str:
    names = ["x", "y", "v0", "v1", "v2"]
    decls = [f"int v{i} = {draw(st.integers(-9, 9))};" for i in range(3)]
    body = draw(statements(names, targets=list(names)))
    ret = draw(expressions(names))
    return (
        "int f(int a[], int x, int y) {\n"
        + "\n".join(decls) + "\n"
        + "\n".join(body) + "\n"
        + f"return {ret};\n}}\n"
    )


def run_all_levels(source: str, array: list[int], x: int, y: int):
    outcomes = []
    configs = [
        ("raw", PC(level=ScheduleLevel.NONE, post_bb_pass=False,
                   unroll_max_blocks=0, rotate_max_blocks=0,
                   strength_reduce=False)),
        ("base", PC(level=ScheduleLevel.NONE)),
        ("useful", PC(level=ScheduleLevel.USEFUL)),
        ("speculative", PC(level=ScheduleLevel.SPECULATIVE)),
        ("spec2", PC(level=ScheduleLevel.SPECULATIVE, max_speculation=2)),
        ("rename-ahead", PC(level=ScheduleLevel.SPECULATIVE,
                            rename_ahead=True)),
        ("duplication", PC(level=ScheduleLevel.SPECULATIVE,
                           allow_duplication=True)),
        ("ctr-loops", PC(level=ScheduleLevel.SPECULATIVE,
                         use_counter_register=True)),
    ]
    for name, config in configs:
        result = compile_c(source, level=config.level, config=config)
        run = result["f"].run(list(array), x, y)
        outcomes.append((name, run.return_value, run.arrays[0]))
    return outcomes


@given(
    source=programs(),
    array=st.lists(st.integers(-99, 99), min_size=ARRAY_LEN,
                   max_size=ARRAY_LEN),
    x=st.integers(-99, 99),
    y=st.integers(-99, 99),
)
@settings(max_examples=40, deadline=None)
def test_all_pipelines_agree(source, array, x, y):
    outcomes = run_all_levels(source, array, x, y)
    reference = outcomes[0]
    for name, value, memory in outcomes[1:]:
        assert value == reference[1], (name, source)
        assert memory == reference[2], (name, source)


#: Hand-picked regression programs exercising tricky interactions.
TRICKY = [
    # loop-carried dependence through an array cell
    """
int f(int a[], int x, int y) {
    for (int i = 0; i < 8; i++) { a[i + 1] = a[i] + 1; }
    return a[8];
}
""",
    # speculative twin definitions on both arms (the Figure 6 pattern)
    """
int f(int a[], int x, int y) {
    int m = a[0];
    if (x > y) { if (x > m) m = x; } else { if (y > m) m = y; }
    return m;
}
""",
    # tight 2-block loop: exercises unroll + rotate + pipelining
    """
int f(int a[], int x, int y) {
    int s = 0;
    for (int i = 0; i < 15; i++) { s = s + a[i]; }
    return s;
}
""",
    # store/load disambiguation inside one block
    """
int f(int a[], int x, int y) {
    a[0] = x;
    a[1] = y;
    return a[0] - a[1];
}
""",
    # nested loops: outer region with an abstract inner node
    """
int f(int a[], int x, int y) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        int t = a[i];
        for (int j = 0; j < 3; j++) { s = s + t; }
        s = s ^ i;
    }
    return s;
}
""",
    # overflowing arithmetic must wrap identically everywhere
    """
int f(int a[], int x, int y) {
    int big = 2147483647;
    return big + x * y;
}
""",
]


def test_tricky_corpus():
    array = list(range(ARRAY_LEN))
    for source in TRICKY:
        outcomes = run_all_levels(source, array, 7, -3)
        reference = outcomes[0]
        for name, value, memory in outcomes[1:]:
            assert value == reference[1], (name, source)
            assert memory == reference[2], (name, source)
