"""Property-based invariants on the core data structures.

These complement the end-to-end semantic-preservation property test with
targeted invariants: parser/printer round trips, list-scheduler dependence
safety, and simulator in-order discipline -- each over randomly generated
straight-line code.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    Builder,
    Function,
    cr,
    format_function,
    gpr,
    parse_function,
    verify_function,
)
from repro.machine import rs6k, superscalar
from repro.pdg import DepKind, build_block_ddg
from repro.sched import schedule_block
from repro.sim import execute, simulate_trace


@st.composite
def random_block(draw):
    """A random straight-line block over a small register pool."""
    func = Function("rand")
    b = Builder(func)
    b.start_block("a")
    pool = [gpr(i) for i in range(3, 9)]
    n = draw(st.integers(2, 14))
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["li", "add", "ai", "mul", "xor", "load", "store", "cmp"]))
        if kind == "li":
            b.li(draw(st.sampled_from(pool)), draw(st.integers(-9, 9)))
        elif kind == "add":
            b.add(*(draw(st.sampled_from(pool)) for _ in range(3)))
        elif kind == "ai":
            b.ai(draw(st.sampled_from(pool)), draw(st.sampled_from(pool)),
                 draw(st.integers(-9, 9)))
        elif kind == "mul":
            b.mul(*(draw(st.sampled_from(pool)) for _ in range(3)))
        elif kind == "xor":
            b.xor(*(draw(st.sampled_from(pool)) for _ in range(3)))
        elif kind == "load":
            b.load(draw(st.sampled_from(pool)), gpr(1),
                   4 * draw(st.integers(0, 7)), symbol="m")
        elif kind == "store":
            b.store(draw(st.sampled_from(pool)), gpr(1),
                    4 * draw(st.integers(0, 7)), symbol="m")
        else:
            b.cmp(cr(0), draw(st.sampled_from(pool)),
                  draw(st.sampled_from(pool)))
    return func


@given(random_block())
@settings(max_examples=60, deadline=None)
def test_print_parse_round_trip(func):
    text = format_function(func)
    again = parse_function(text)
    assert format_function(again) == text
    verify_function(again)


@given(random_block())
@settings(max_examples=60, deadline=None)
def test_bb_scheduler_respects_dependences(func):
    block = func.blocks[0]
    machine = rs6k()
    ddg = build_block_ddg(block, machine)  # dependences of the input order
    schedule_block(block, machine)
    position = {id(ins): i for i, ins in enumerate(block.instrs)}
    for edge in ddg.edges():
        assert position[id(edge.src)] < position[id(edge.dst)], edge


@given(random_block())
@settings(max_examples=40, deadline=None)
def test_bb_scheduler_preserves_semantics(func):
    import copy
    text = format_function(func)
    original = parse_function(text)
    scheduled = parse_function(text)
    schedule_block(scheduled.blocks[0], rs6k())
    verify_function(scheduled)
    memory = {4 * i: i * 11 - 7 for i in range(8)}
    regs = {gpr(1): 0, **{gpr(i): i * 3 - 5 for i in range(3, 9)}}
    a = execute(original, regs=dict(regs), memory=dict(memory))
    b = execute(scheduled, regs=dict(regs), memory=dict(memory))
    assert a.regs == b.regs
    assert a.memory == b.memory


@given(random_block())
@settings(max_examples=60, deadline=None)
def test_simulator_in_order_discipline(func):
    block = func.blocks[0]
    machine = rs6k()
    result = simulate_trace([block], machine)
    # in-order: issue cycles never decrease along the stream
    for earlier, later in zip(result.issue_cycles, result.issue_cycles[1:]):
        assert later >= earlier
    # per-unit capacity: never more than one FXU instruction per cycle
    from collections import Counter
    per_cycle = Counter(
        (ins.unit, cycle)
        for ins, cycle in zip(block.instrs, result.issue_cycles)
    )
    for (unit, _cycle), count in per_cycle.items():
        assert count <= machine.unit_count(unit)


@given(random_block())
@settings(max_examples=40, deadline=None)
def test_wider_machine_never_slower(func):
    block = func.blocks[0]
    narrow = simulate_trace([block], rs6k())
    wide = simulate_trace([block], superscalar(4))
    assert wide.cycles <= narrow.cycles


@given(random_block())
@settings(max_examples=40, deadline=None)
def test_scheduling_rarely_increases_simulated_cycles(func):
    # Greedy list scheduling is not optimal (Graham anomalies exist), but
    # any regression must stay within a small constant on these blocks.
    text = format_function(func)
    original = parse_function(text)
    scheduled = parse_function(text)
    schedule_block(scheduled.blocks[0], rs6k())
    before = simulate_trace([original.blocks[0]], rs6k())
    after = simulate_trace([scheduled.blocks[0]], rs6k())
    assert after.cycles <= before.cycles + 2


# -- whole-pipeline properties over generated mini-C programs ---------------
#
# Documented regression allowance: global scheduling is heuristic, so a
# more aggressive level may *cost* cycles on a particular input path --
# speculation executes work the taken path never needed, and greedy
# issue has Graham anomalies.  Observed worst cases over the generator
# distribution are ~1% (USEFUL vs NONE) and ~10% (SPECULATIVE vs
# USEFUL); the bound below is that empirical envelope plus headroom, so
# only a systematic regression (not scheduler noise) can trip it.
_ALLOWANCE_FACTOR = 1.15
_ALLOWANCE_CYCLES = 8


def _generated_cycles(seed: int):
    from repro.sched.candidates import ScheduleLevel
    from repro.verify import generate_program, run_differential

    program = generate_program(seed)
    outcome = run_differential(program, machines=("rs6k",))
    assert outcome.ok, outcome.format_failures()
    return (outcome.cycles("rs6k", ScheduleLevel.NONE),
            outcome.cycles("rs6k", ScheduleLevel.USEFUL),
            outcome.cycles("rs6k", ScheduleLevel.SPECULATIVE))


@given(st.integers(0, 2 ** 20))
@settings(max_examples=12, deadline=None)
def test_generated_level_cycles_monotone_within_allowance(seed):
    none, useful, speculative = _generated_cycles(seed)
    bound = none * _ALLOWANCE_FACTOR + _ALLOWANCE_CYCLES
    assert useful <= bound, (none, useful, speculative)
    assert speculative <= bound, (none, useful, speculative)
    assert speculative <= useful * _ALLOWANCE_FACTOR + _ALLOWANCE_CYCLES


@given(st.integers(0, 2 ** 20))
@settings(max_examples=10, deadline=None)
def test_generated_programs_verify_at_every_level(seed):
    from repro.compiler import compile_c
    from repro.sched.candidates import ScheduleLevel
    from repro.verify import generate_program
    from repro.xform.pipeline import PipelineConfig

    program = generate_program(seed)
    for level in ScheduleLevel:
        result = compile_c(program.source, level=level,
                           config=PipelineConfig(level=level, verify=True))
        for unit in result:
            assert unit.report.verify_reports
            for report in unit.report.verify_reports:
                assert report.ok, report.format()
