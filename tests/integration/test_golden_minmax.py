"""Golden + conformance tests for the paper's running example.

Two layers of locking:

* **golden files** (``tests/golden/minmax.*``): the exact rs6k assembly
  and motion list for ``examples/minmax.c`` at the paper's default level.
  Refresh intentionally with ``pytest --update-goldens``.
* **conformance**: the decision trace must *show* the Section 2 story --
  the compare->branch delay window of the loop header is filled by
  compares moved up speculatively from the conditional arms (Figure 2's
  "instructions that will be executed with high probability"), exactly as
  Figure 6 schedules I5 and I12 into BL1 between I3 and I4.
"""

from pathlib import Path

from repro.compiler import compile_c
from repro.machine import rs6k
from repro.machine.configs import CONFIGS
from repro.obs import CollectingTracer
from repro.sched import ScheduleLevel, global_schedule
from repro.xform.pipeline import PipelineConfig

from ..conftest import block_uids

MINMAX_C = Path("examples/minmax.c").read_text()


def _compile_traced():
    trace = CollectingTracer()
    result = compile_c(MINMAX_C, machine=CONFIGS["rs6k"](),
                       level=ScheduleLevel.SPECULATIVE,
                       config=PipelineConfig(trace=trace))
    return result, trace


def _format_motions(motions):
    lines = []
    for m in motions:
        kind = "speculative" if m.speculative else "useful"
        if m.duplicated:
            kind = f"duplicated[{','.join(m.duplicated_into)}]"
        lines.append(f"I{m.uid} {m.opcode} {m.src} -> {m.dst}  {kind}")
    return "\n".join(lines) + "\n"


class TestGoldenFiles:
    def test_assembly(self, golden):
        result, _trace = _compile_traced()
        text = "\n\n".join(unit.assembly() for unit in result) + "\n"
        golden("minmax.s", text)

    def test_motions(self, golden):
        result, _trace = _compile_traced()
        unit = result["minmax"]
        golden("minmax.motions.txt", _format_motions(unit.report.motions))


class TestFigure2Conformance:
    """The trace of the Figure 2 IR replays the Figure 6 schedule."""

    def _schedule(self, figure2):
        trace = CollectingTracer()
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE,
                        tracer=trace)
        return trace

    def test_speculative_compares_fill_the_delay_window(self, figure2):
        trace = self._schedule(figure2)
        issues = [e for e in trace.of_kind("issue") if e.label == "CL.0"]
        by_uid = {e.uid: e for e in issues}
        compare, branch = by_uid[3], by_uid[4]
        spec_fillers = [e for e in issues
                        if e.klass == "speculative"
                        and compare.cycle < e.cycle < branch.cycle]
        # Figure 6: I5 (from BL2) and I12 (from BL6) sit between I3's
        # issue and I4's, covering the 3-cycle compare->branch delay
        assert {e.uid for e in spec_fillers} == {5, 12}
        assert all(e.opcode == "C" for e in spec_fillers)
        assert {e.home for e in spec_fillers} == {"BL2", "CL.4"}

    def test_issue_order_matches_figure6(self, figure2):
        trace = self._schedule(figure2)
        header_issues = [e.uid for e in trace.of_kind("issue")
                         if e.label == "CL.0"]
        assert header_issues == [1, 2, 18, 3, 19, 5, 12, 4]
        # ... and the function the trace describes is the function we got
        assert block_uids(figure2)["CL.0"] == header_issues

    def test_motions_traced_match_report(self, figure2):
        trace = CollectingTracer()
        report = global_schedule(figure2, rs6k(),
                                 ScheduleLevel.SPECULATIVE, tracer=trace)
        traced = {(e.uid, e.src, e.dst, e.speculative)
                  for e in trace.of_kind("motion")}
        reported = {(m.uid, m.src, m.dst, m.speculative)
                    for m in report.motions}
        assert traced == reported
        assert (5, "BL2", "CL.0", True) in traced
        assert (12, "CL.4", "CL.0", True) in traced

    def test_region_events_bracket_the_loop(self, figure2):
        trace = self._schedule(figure2)
        enters = trace.of_kind("region_enter")
        exits = trace.of_kind("region_exit")
        assert len(enters) == len(exits) == 1
        assert enters[0].header == "CL.0"
        assert enters[0].region_kind == "loop"
        assert "CL.0" in enters[0].blocks
        assert exits[0].motions == len(
            [e for e in trace.of_kind("motion")])
        assert exits[0].speculative_motions == 2


class TestMinmaxCConformance:
    """The compiled mini-C version tells the same story, one level up."""

    def test_speculative_motion_into_loop_header(self):
        result, trace = _compile_traced()
        spec = [e for e in trace.of_kind("motion") if e.speculative]
        assert len(spec) == 1
        motion = spec[0]
        # a compare from a conditional arm moves into the loop header
        assert motion.opcode == "C"
        assert motion.dst.startswith("LH.")
        issue = next(e for e in trace.of_kind("issue")
                     if e.uid == motion.uid and e.label == motion.dst)
        assert issue.klass == "speculative"

    def test_speculative_issue_precedes_the_branch(self):
        _result, trace = _compile_traced()
        motion = next(e for e in trace.of_kind("motion") if e.speculative)
        header = motion.dst
        issues = [e for e in trace.of_kind("issue") if e.label == header]
        branch_cycle = max(e.cycle for e in issues
                           if e.unit == "branch")
        spec_issue = next(e for e in issues if e.uid == motion.uid)
        assert spec_issue.cycle < branch_cycle
