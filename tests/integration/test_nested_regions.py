"""Integration: scheduling across nested regions (inner + outer loops).

Checks the Section 5.1 principles on a two-level nest: instructions never
cross region boundaries, the inner loop is scheduled first, and the outer
region schedules around the collapsed inner loop.
"""

import pytest

from repro import ScheduleLevel, compile_c, rs6k
from repro.ir import verify_function, verify_reachable
from repro.sched import global_schedule
from repro.lang import compile_c_functions

NESTED = """
int nested(int a[], int rows, int cols) {
    int total = 0;
    for (int i = 0; i < rows; i++) {
        int rowsum = 0;
        int base = i * cols;
        for (int j = 0; j < cols; j++) {
            rowsum = rowsum + a[base + j];
        }
        if (rowsum > 100) { total = total + 100; }
        else { total = total + rowsum; }
    }
    return total;
}
"""


def reference(a, rows, cols):
    total = 0
    for i in range(rows):
        rowsum = sum(a[i * cols + j] for j in range(cols))
        total += 100 if rowsum > 100 else rowsum
    return total


@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_nested_semantics(level):
    import random
    rng = random.Random(8)
    rows, cols = 5, 7
    a = [rng.randrange(0, 40) for _ in range(rows * cols)]
    result = compile_c(NESTED, level=level)
    run = result["nested"].run(list(a), rows, cols)
    assert run.return_value == reference(a, rows, cols)
    verify_function(result["nested"].func)
    verify_reachable(result["nested"].func)


def test_instructions_never_cross_region_boundaries():
    units = compile_c_functions(NESTED)
    cf = units["nested"]

    # which loop does each instruction live in before scheduling?
    from repro.cfg import ControlFlowGraph, ENTRY, LoopNest, dominator_tree
    cfg = ControlFlowGraph(cf.func)
    nest = LoopNest(cfg.graph, dominator_tree(cfg.graph, ENTRY))
    inner = min(nest.loops, key=lambda l: len(l.body))

    def region_of(label):
        return "inner" if label in inner.body else "outer"

    before = {
        ins.uid: region_of(b.label)
        for b in cf.func.blocks for ins in b.instrs
    }
    report = global_schedule(cf.func, rs6k(), ScheduleLevel.SPECULATIVE,
                             live_at_exit=cf.live_at_exit)
    # loop structure unchanged by pure scheduling: recompute membership
    after = {
        ins.uid: region_of(b.label)
        for b in cf.func.blocks for ins in b.instrs
    }
    for uid, region in before.items():
        assert after[uid] == region, f"I{uid} crossed a region boundary"
    assert report.motions  # something was scheduled


def test_outer_region_motion_happens():
    # the outer region has schedulable material (the if/else around the
    # inner loop); check that some motion occurs outside the inner loop
    units = compile_c_functions(NESTED)
    cf = units["nested"]
    from repro.cfg import ControlFlowGraph, ENTRY, LoopNest, dominator_tree
    cfg = ControlFlowGraph(cf.func)
    nest = LoopNest(cfg.graph, dominator_tree(cfg.graph, ENTRY))
    inner = min(nest.loops, key=lambda l: len(l.body))
    report = global_schedule(cf.func, rs6k(), ScheduleLevel.SPECULATIVE,
                             live_at_exit=cf.live_at_exit)
    outer_motions = [m for m in report.motions if m.src not in inner.body]
    assert outer_motions, "expected motion in the outer region too"
