"""End-to-end reproduction of every figure in the paper.

Each test states the paper's own claim it checks.
"""

import pytest

from repro import compile_c, ScheduleLevel, rs6k
from repro.bench import MINMAX_C
from repro.cfg import ControlFlowGraph, ENTRY, EXIT, dominator_tree
from repro.ir import format_function, parse_function
from repro.machine import superscalar
from repro.pdg import RegionPDG
from repro.sched import global_schedule
from repro.sim import simulate_path_iterations

from ..conftest import FIGURE2, block_uids


class TestFigure1And2:
    """Figure 1 (the C program) compiles to Figure 2-shaped code."""

    def test_minmax_compiles_and_runs(self):
        result = compile_c(MINMAX_C, level=ScheduleLevel.NONE)
        unit = result["minmax"]
        data = [5, -3, 8, 1, 9, 0, 7, 7, -2, 4]
        run = unit.run(data, 9, [0, 0])
        assert run.arrays[1] == [-3, 9]

    def test_loop_shape_matches_figure2(self):
        # ten basic blocks in the loop; two loads, five compares, five
        # branches, two LR-updates per side -- the Figure 2 inventory
        result = compile_c(MINMAX_C, level=ScheduleLevel.NONE)
        func = result["minmax"].func
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        from repro.cfg import LoopNest
        loop = LoopNest(cfg.graph, dom).loops[0]
        assert len(loop.body) == 10

    def test_figure2_cycle_estimates(self, figure2):
        # "the code executes in 20, 21 or 22 cycles, depending on if 0, 1
        # or 2 updates of max and min variables (LR instructions) are done"
        paths = {
            0: ["CL.0", "BL2", "CL.6", "CL.9"],
            1: ["CL.0", "BL2", "BL3", "CL.6", "CL.9"],
            2: ["CL.0", "BL2", "BL3", "CL.6", "BL5", "CL.9"],
        }
        for updates, path in paths.items():
            assert simulate_path_iterations(figure2, path, rs6k()) == \
                20 + updates


class TestFigure3:
    """The control flow graph of the loop."""

    def test_edges(self, figure2):
        cfg = ControlFlowGraph(figure2)
        assert set(cfg.succs("CL.0")) == {"BL2", "CL.4"}
        assert set(cfg.succs("BL2")) == {"BL3", "CL.6"}
        assert set(cfg.succs("CL.6")) == {"BL5", "CL.9"}
        assert set(cfg.succs("CL.4")) == {"BL7", "CL.11"}
        assert set(cfg.succs("CL.11")) == {"BL9", "CL.9"}
        assert set(cfg.succs("CL.9")) == {"CL.0", EXIT}
        assert cfg.preds("CL.0") == [ENTRY, "CL.9"]

    def test_single_entry_single_exit(self, figure2):
        cfg = ControlFlowGraph(figure2)
        assert cfg.succs(ENTRY) == ["CL.0"]
        exits = [l for l in cfg.block_labels() if EXIT in cfg.succs(l)]
        assert exits == ["CL.9"]


class TestFigure4:
    """The CSPDG with its equivalence (dashed) edges."""

    def test_equivalence_classes(self, figure2):
        pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
        classes = {frozenset(c) for c in pdg.cspdg.equivalence_classes}
        assert frozenset({"CL.0", "CL.9"}) in classes
        assert frozenset({"BL2", "CL.6"}) in classes
        assert frozenset({"CL.4", "CL.11"}) in classes

    def test_speculation_degrees(self, figure2):
        pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
        assert pdg.cspdg.speculation_degree("CL.0", "CL.11") == 1
        assert pdg.cspdg.speculation_degree("CL.0", "BL5") == 2


class TestFigure5:
    def test_schedule_and_cycles(self, figure2):
        global_schedule(figure2, rs6k(), ScheduleLevel.USEFUL)
        assert block_uids(figure2)["CL.0"] == [1, 2, 18, 3, 19, 4]
        # "The resultant program in Figure 5 takes 12-13 cycles per
        # iteration, while the original ... 20-22"
        for path in (["CL.0", "BL2", "CL.6", "CL.9"],
                     ["CL.0", "CL.4", "CL.11", "CL.9"]):
            assert 12 <= simulate_path_iterations(figure2, path, rs6k()) <= 13


class TestFigure6:
    def test_schedule_and_cycles(self, figure2):
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        assert [i for i in block_uids(figure2)["CL.0"]] == \
            [1, 2, 18, 3, 19, 5, 12, 4]
        # "the program in Figure 6 takes 11-12 cycles per iteration, a one
        # cycle improvement over the program in Figure 5"
        for path in (["CL.0", "BL2", "CL.6", "CL.9"],
                     ["CL.0", "CL.4", "CL.11", "CL.9"]):
            assert 11 <= simulate_path_iterations(figure2, path, rs6k()) <= 12

    def test_only_one_speculative_compare_is_useful(self, figure2):
        # "since I5 and I12 belong to basic blocks that are never executed
        # together ... only one of these two instructions will carry a
        # useful result" -- both sit in BL1, defining different registers
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        bl1 = figure2.block("CL.0")
        compares = [i for i in bl1.instrs if i.uid in (5, 12)]
        assert len(compares) == 2
        assert compares[0].defs[0] != compares[1].defs[0]


class TestSection6Claims:
    def test_wider_machine_bigger_payoff(self):
        # "We may expect even bigger payoffs in machines with a larger
        # number of computational units."
        def improvement(machine):
            base = parse_function(FIGURE2)
            sched = parse_function(FIGURE2)
            global_schedule(sched, machine, ScheduleLevel.SPECULATIVE)
            path = ["CL.0", "BL2", "CL.6", "CL.9"]
            b = simulate_path_iterations(base, path, machine)
            s = simulate_path_iterations(sched, path, machine)
            return (b - s) / b

        narrow = improvement(rs6k())
        wide = improvement(superscalar(2))
        assert wide >= narrow
