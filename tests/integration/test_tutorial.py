"""docs/TUTORIAL.md must not rot: exercise each of its code paths."""

from repro import (
    DelayModel,
    MachineModel,
    PipelineConfig,
    ScheduleLevel,
    compile_c,
)
from repro.ir import RegClass, UnitType
from repro.machine import rs6k
from repro.regalloc import allocate_registers
from repro.sched import BranchProfile, build_region_pdg, find_regions
from repro.sim import SimulationResult, TraceSimulator, format_timeline

SOURCE = """
int minmax(int a[], int n, int out[]) {
    int min = a[0]; int max = min; int i = 1;
    while (i < n) {
        int u = a[i]; int v = a[i + 1];
        if (u > v) { if (u > max) max = u; if (v < min) min = v; }
        else       { if (v > max) max = v; if (u < min) min = u; }
        i = i + 2;
    }
    out[0] = min; out[1] = max; return 0;
}
"""


def test_section_2_base_compile():
    base = compile_c(SOURCE, level=ScheduleLevel.NONE)
    assert "function minmax" in base["minmax"].assembly()


def test_section_3_analyses():
    base = compile_c(SOURCE, level=ScheduleLevel.NONE)
    func = base["minmax"].func
    loop = next(r for r in find_regions(func) if r.kind == "loop")
    pdg = build_region_pdg(func, rs6k(), loop)
    assert "equiv" in pdg.cspdg.format()
    assert pdg.cspdg.equivalence_classes


def test_section_4_motions():
    spec = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE)
    assert spec["minmax"].report.motions


def test_section_5_run_and_timeline():
    spec = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE)
    run = spec["minmax"].run([5, -3, 8, 1, 9, 0], 5, [0, 0])
    assert run.arrays[1] == [-3, 9]

    instrs = run.execution.instr_trace[:24]
    sim = TraceSimulator(rs6k())
    cycles = [sim.issue(i) for i in instrs]
    result = SimulationResult(max(cycles) + 1, len(instrs), cycles)
    assert "X" in format_timeline(instrs, result, rs6k())


def test_section_6_custom_machine():
    my_machine = MachineModel(
        "mine",
        units={UnitType.FXU: 2, UnitType.FPU: 1, UnitType.BRU: 1},
        delays=DelayModel(load_use=2, fixed_compare_branch=4),
    )
    result = compile_c(SOURCE, machine=my_machine)
    run = result["minmax"].run([5, -3, 8, 1, 9, 0], 5, [0, 0])
    assert run.arrays[1] == [-3, 9]


def test_section_7_extension_knobs():
    base = compile_c(SOURCE, level=ScheduleLevel.NONE)
    profile = BranchProfile()
    profile.record(
        base["minmax"].run([5, -3, 8, 1, 9, 0], 5, [0, 0]).execution)
    config = PipelineConfig(
        level=ScheduleLevel.SPECULATIVE,
        max_speculation=2,
        allow_duplication=True,
        use_counter_register=True,
        profile=profile,
    )
    result = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE,
                       config=config)
    run = result["minmax"].run([5, -3, 8, 1, 9, 0], 5, [0, 0])
    assert run.arrays[1] == [-3, 9]


def test_section_8_register_allocation():
    base = compile_c(SOURCE, level=ScheduleLevel.SPECULATIVE)
    func = base["minmax"].func
    report = allocate_registers(func, live_at_exit=frozenset())
    assert report.machine_registers_used(RegClass.GPR) <= 32
