"""The full pipeline must be correct on every machine configuration."""

import random

import pytest

from repro import ScheduleLevel, compile_c
from repro.machine import CONFIGS

SOURCE = """
int kernel(int a[], int b[], int n) {
    int acc = 0;
    int bias = 3;
    for (int i = 0; i < n; i++) {
        int x = a[i];
        int y = b[i];
        if (x > y) { acc = acc + x - y; }
        else { if (x < 0) { acc = acc ^ y; } else { acc = acc + bias; } }
    }
    return acc;
}
"""


def reference(a, b, n):
    acc, bias = 0, 3
    for i in range(n):
        x, y = a[i], b[i]
        if x > y:
            acc += x - y
        elif x < 0:
            acc ^= y
        else:
            acc += bias
    return acc


@pytest.fixture(scope="module")
def inputs():
    rng = random.Random(77)
    n = 60
    return ([rng.randrange(-50, 50) for _ in range(n)],
            [rng.randrange(-50, 50) for _ in range(n)], n)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("level",
                         [ScheduleLevel.NONE, ScheduleLevel.SPECULATIVE])
def test_semantics_on_every_machine(config_name, level, inputs):
    a, b, n = inputs
    machine = CONFIGS[config_name]()
    result = compile_c(SOURCE, machine=machine, level=level)
    run = result["kernel"].run(list(a), list(b), n)
    assert run.return_value == reference(a, b, n)
    assert run.cycles > 0


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_scheduling_helps_or_is_neutral_everywhere(config_name, inputs):
    a, b, n = inputs
    machine = CONFIGS[config_name]()
    cycles = {}
    for level in (ScheduleLevel.NONE, ScheduleLevel.SPECULATIVE):
        result = compile_c(SOURCE, machine=machine, level=level)
        cycles[level] = result["kernel"].run(list(a), list(b), n).cycles
    # a small tolerance: heuristics are tuned for narrow machines (the
    # paper says so); they must never regress materially
    assert cycles[ScheduleLevel.SPECULATIVE] <= \
        cycles[ScheduleLevel.NONE] * 1.05


def test_ideal_machine_is_fastest(inputs):
    a, b, n = inputs
    per_machine = {}
    for name in ("rs6k", "ideal4"):
        result = compile_c(SOURCE, machine=CONFIGS[name](),
                           level=ScheduleLevel.SPECULATIVE)
        per_machine[name] = result["kernel"].run(list(a), list(b), n).cycles
    assert per_machine["ideal4"] <= per_machine["rs6k"]
