"""Command-line interface tests (python -m repro ...)."""

import pytest

from repro.__main__ import main

MINMAX_C = """
int minmax(int a[], int n, int out[]) {
    int min = a[0]; int max = min; int i = 1;
    while (i < n) {
        int u = a[i]; int v = a[i+1];
        if (u > v) { if (u > max) max = u; if (v < min) min = v; }
        else       { if (v > max) max = v; if (u < min) min = u; }
        i = i + 2;
    }
    out[0] = min; out[1] = max; return 0;
}
"""

FIGURE2_IR = """
function loop
CL.0:
    (I1) C  cr7=r12,r0
    (I2) BF CL.9,cr7,0x2/gt
BL2:
    (I3) LR r30=r12
CL.9:
    (I4) AI r29=r29,2
    (I5) C  cr4=r29,r27
    (I6) BT CL.0,cr4,0x1/lt
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "minmax.c"
    path.write_text(MINMAX_C)
    return str(path)


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "loop.ir"
    path.write_text(FIGURE2_IR)
    return str(path)


class TestCompile:
    def test_prints_assembly(self, c_file, capsys):
        assert main(["compile", c_file]) == 0
        out = capsys.readouterr().out
        assert "function minmax" in out
        assert "motions" in out

    def test_level_selection(self, c_file, capsys):
        main(["compile", c_file, "--level", "none"])
        out = capsys.readouterr().out
        assert "0 useful + 0 speculative" in out

    def test_machine_selection(self, c_file, capsys):
        assert main(["compile", c_file, "--machine", "ss4"]) == 0

    def test_function_filter(self, c_file, capsys):
        main(["compile", c_file, "--function", "nope"])
        assert "function" not in capsys.readouterr().out

    def test_ctr_flag(self, tmp_path, capsys):
        path = tmp_path / "sum.c"
        path.write_text("int f(int a[], int n) { int s = 0; int i = 0;"
                        " while (i < n) { s += a[i]; i++; } return s; }")
        main(["compile", str(path), "--ctr"])
        assert "BDNZ" in capsys.readouterr().out


class TestRun:
    def test_runs_and_reports(self, c_file, capsys):
        assert main(["run", c_file, "minmax",
                     "5,-3,8,1,9,0", "5", "0,0"]) == 0
        out = capsys.readouterr().out
        assert "return value: 0" in out
        assert "array arg 1: [-3, 9]" in out
        assert "cycles:" in out

    def test_scalar_args(self, tmp_path, capsys):
        path = tmp_path / "add.c"
        path.write_text("int add(int x, int y) { return x + y; }")
        main(["run", str(path), "add", "20", "22"])
        assert "return value: 42" in capsys.readouterr().out


class TestSchedule:
    def test_schedules_ir(self, ir_file, capsys):
        assert main(["schedule", ir_file, "--level", "useful"]) == 0
        out = capsys.readouterr().out
        assert "function loop" in out
        assert "Motion" in out


class TestDot:
    @pytest.mark.parametrize("graph", ["cfg", "cspdg", "ddg"])
    def test_graphs(self, c_file, graph, capsys):
        assert main(["dot", c_file, "--graph", graph]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert out.rstrip().endswith("}")

    def test_cfg_with_instructions(self, c_file, capsys):
        main(["dot", c_file, "--instructions"])
        assert "\\l" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])
