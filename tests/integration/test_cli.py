"""Command-line interface tests (python -m repro ...)."""

import json

import pytest

from repro.__main__ import main

MINMAX_C = """
int minmax(int a[], int n, int out[]) {
    int min = a[0]; int max = min; int i = 1;
    while (i < n) {
        int u = a[i]; int v = a[i+1];
        if (u > v) { if (u > max) max = u; if (v < min) min = v; }
        else       { if (v > max) max = v; if (u < min) min = u; }
        i = i + 2;
    }
    out[0] = min; out[1] = max; return 0;
}
"""

FIGURE2_IR = """
function loop
CL.0:
    (I1) C  cr7=r12,r0
    (I2) BF CL.9,cr7,0x2/gt
BL2:
    (I3) LR r30=r12
CL.9:
    (I4) AI r29=r29,2
    (I5) C  cr4=r29,r27
    (I6) BT CL.0,cr4,0x1/lt
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "minmax.c"
    path.write_text(MINMAX_C)
    return str(path)


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "loop.ir"
    path.write_text(FIGURE2_IR)
    return str(path)


class TestCompile:
    def test_prints_assembly(self, c_file, capsys):
        assert main(["compile", c_file]) == 0
        out = capsys.readouterr().out
        assert "function minmax" in out
        assert "motions" in out

    def test_level_selection(self, c_file, capsys):
        main(["compile", c_file, "--level", "none"])
        out = capsys.readouterr().out
        assert "0 useful + 0 speculative" in out

    def test_machine_selection(self, c_file, capsys):
        assert main(["compile", c_file, "--machine", "ss4"]) == 0

    def test_function_filter(self, c_file, capsys):
        main(["compile", c_file, "--function", "nope"])
        assert "function" not in capsys.readouterr().out

    def test_ctr_flag(self, tmp_path, capsys):
        path = tmp_path / "sum.c"
        path.write_text("int f(int a[], int n) { int s = 0; int i = 0;"
                        " while (i < n) { s += a[i]; i++; } return s; }")
        main(["compile", str(path), "--ctr"])
        assert "BDNZ" in capsys.readouterr().out


class TestRun:
    def test_runs_and_reports(self, c_file, capsys):
        assert main(["run", c_file, "minmax",
                     "5,-3,8,1,9,0", "5", "0,0"]) == 0
        out = capsys.readouterr().out
        assert "return value: 0" in out
        assert "array arg 1: [-3, 9]" in out
        assert "cycles:" in out

    def test_scalar_args(self, tmp_path, capsys):
        path = tmp_path / "add.c"
        path.write_text("int add(int x, int y) { return x + y; }")
        main(["run", str(path), "add", "20", "22"])
        assert "return value: 42" in capsys.readouterr().out


class TestSchedule:
    def test_schedules_ir(self, ir_file, capsys):
        assert main(["schedule", ir_file, "--level", "useful"]) == 0
        out = capsys.readouterr().out
        assert "function loop" in out
        assert "Motion" in out


class TestDot:
    @pytest.mark.parametrize("graph", ["cfg", "cspdg", "ddg"])
    def test_graphs(self, c_file, graph, capsys):
        assert main(["dot", c_file, "--graph", graph]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert out.rstrip().endswith("}")

    def test_cfg_with_instructions(self, c_file, capsys):
        main(["dot", c_file, "--instructions"])
        assert "\\l" in capsys.readouterr().out


class TestStats:
    def test_prints_paper_style_report(self, c_file, capsys):
        assert main(["stats", c_file]) == 0
        out = capsys.readouterr().out
        assert "scheduling report" in out
        assert "function minmax" in out
        assert "speculation rate" in out
        assert "ready-list pressure" in out
        assert "phase times (ms)" in out

    def test_respects_level_and_machine(self, c_file, capsys):
        assert main(["stats", c_file, "--level", "useful",
                     "--machine", "ss2"]) == 0
        out = capsys.readouterr().out
        assert "machine ss2, level useful" in out
        assert "speculative motions performed         0" in out


class TestTraceOutputs:
    def test_jsonl_trace(self, c_file, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["compile", c_file, "--trace-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        kinds = [json.loads(line)["ev"] for line in lines]
        assert kinds[0] == "function_begin"
        assert "issue" in kinds and "motion" in kinds

    def test_jsonl_round_trips_to_typed_events(self, c_file, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "trace.jsonl"
        main(["compile", c_file, "--trace-out", str(path)])
        events = list(read_jsonl(str(path)))
        assert events[0].kind == "function_begin"
        assert any(e.kind == "motion" and e.speculative for e in events)

    def test_chrome_trace(self, c_file, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["stats", c_file, "--trace-chrome", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e.get("cat") == "issue" for e in doc["traceEvents"])

    def test_both_sinks_together(self, c_file, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert main(["compile", c_file, "--trace-out", str(jsonl),
                     "--trace-chrome", str(chrome)]) == 0
        assert jsonl.read_text()
        json.loads(chrome.read_text())


class TestFuzzMetrics:
    def test_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["fuzz", "--n", "2", "--seed", "7",
                     "--metrics-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["master_seed"] == 7
        assert doc["attempted"] == 2
        assert [p["index"] for p in doc["programs"]] == [0, 1]
        for program in doc["programs"]:
            assert {"motions_useful", "motions_speculative",
                    "spec_rejected", "ready_mean",
                    "ready_max"} <= set(program)


class TestMissingInputFiles:
    """Satellite fix: one-line stderr error + exit 2, never a traceback."""

    COMMANDS = [
        ["compile", "{path}"],
        ["run", "{path}", "minmax", "1,2", "2", "0,0"],
        ["schedule", "{path}"],
        ["dot", "{path}"],
        ["verify", "{path}"],
        ["stats", "{path}"],
    ]

    @pytest.mark.parametrize("argv", COMMANDS, ids=lambda a: a[0])
    def test_missing_file(self, argv, tmp_path, capsys):
        missing = str(tmp_path / "no" / "such.c")
        argv = [a.format(path=missing) for a in argv]
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot read")
        assert missing in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_directory_as_input(self, tmp_path, capsys):
        assert main(["compile", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read")


class TestMalformedIR:
    """Satellite fix: a :class:`repro.ir.parser.ParseError` surfaces as a
    located one-line stderr message with exit 2, never a traceback."""

    def test_unknown_mnemonic_with_line_and_column(self, tmp_path, capsys):
        path = tmp_path / "bad.ir"
        path.write_text("function f\nCL.0:\n    BOGUS r1=r2,r3\n")
        assert main(["schedule", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}: line 3, col 5:")
        assert "unknown mnemonic 'BOGUS'" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_bad_operand_is_located(self, tmp_path, capsys):
        path = tmp_path / "bad.ir"
        path.write_text("function f\nCL.0:\n    A r1=zz,r3\n")
        assert main(["schedule", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 3, col 7" in err
        assert "not a register name" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_function_line(self, tmp_path, capsys):
        path = tmp_path / "bad.ir"
        path.write_text("CL.0:\n    NOP\n")
        assert main(["schedule", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err
        assert "'function <name>'" in err


class TestBadCheckpointResume:
    """Satellite fix: ``fuzz --resume`` on a damaged checkpoint is a
    one-line stderr error with exit 2, never a traceback."""

    def _resume(self, path):
        return ["fuzz", "--n", "2", "--seed", "7", "--no-shrink",
                "--resume", str(path)]

    def _good_state(self):
        return {"version": 1, "master_seed": 7, "n": 2,
                "machines": ["rs6k", "scalar", "ss2"], "shrink": False,
                "collect_metrics": False, "done": [0, 1],
                "failures": [], "quarantined": [], "metric_summaries": []}

    def _expect_one_line_error(self, capsys, *needles):
        err = capsys.readouterr().err
        assert err.startswith("error:")
        for needle in needles:
            assert needle in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err
        return err

    def test_truncated_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self._good_state())[:40])
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "corrupt checkpoint",
                                    str(path))

    def test_missing_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "cannot read checkpoint",
                                    str(path))

    def test_wrong_schema_missing_field(self, tmp_path, capsys):
        state = self._good_state()
        del state["done"]
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(state))
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "does not match the v1 schema",
                                    "'done'")

    def test_wrong_schema_bad_type(self, tmp_path, capsys):
        state = self._good_state()
        state["failures"] = "none"
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(state))
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "does not match the v1 schema",
                                    "'failures'", "should be list")

    def test_bool_is_not_a_program_count(self, tmp_path, capsys):
        state = self._good_state()
        state["n"] = True
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(state))
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "does not match the v1 schema",
                                    "'n'", "should be int")

    def test_different_campaign(self, tmp_path, capsys):
        state = self._good_state()
        state["master_seed"] = 8
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(state))
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "different campaign",
                                    "master_seed")

    def _v2_header(self):
        return {"version": 2, "master_seed": 7, "n": 2,
                "machines": ["rs6k", "scalar", "ss2"], "shrink": False,
                "collect_metrics": False}

    def test_torn_final_wal_line_is_tolerated(self, tmp_path, capsys):
        """ISSUE satellite: a v2 checkpoint whose *final* entry was torn
        by a crash resumes cleanly -- the torn index just re-runs."""
        entry = {"done": 0, "failure": None, "quarantined": None,
                 "metrics": None}
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self._v2_header()) + "\n"
                        + json.dumps(entry) + "\n"
                        + '{"done": 1, "fail')  # torn by kill -9
        assert main(self._resume(path)) == 0
        assert "Traceback" not in capsys.readouterr().err

    def test_torn_nonfinal_wal_line_stays_exit_2(self, tmp_path, capsys):
        entry = {"done": 1, "failure": None, "quarantined": None,
                 "metrics": None}
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self._v2_header()) + "\n"
                        + '{"done": 0, "fail\n'
                        + json.dumps(entry) + "\n")
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "corrupt checkpoint",
                                    "line 2")

    def test_wal_entry_wrong_shape_is_a_schema_error(self, tmp_path,
                                                     capsys):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self._v2_header()) + "\n"
                        + '{"index": 0}\n')
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "does not match the v2 schema",
                                    "not a program entry")

    def test_v2_header_missing_field(self, tmp_path, capsys):
        header = self._v2_header()
        del header["machines"]
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(header) + "\n")
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "does not match the v2 schema",
                                    "'machines'")

    def test_unsupported_version(self, tmp_path, capsys):
        header = self._v2_header()
        header["version"] = 3
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(header) + "\n")
        assert main(self._resume(path)) == 2
        self._expect_one_line_error(capsys, "unsupported version", "3")


class TestUnknownMachine:
    """Satellite fix (PR 8): ``--machine``/``--machines`` with an unknown
    name is a one-line stderr error listing the available machines, exit
    2, never an argparse usage dump or a traceback -- uniformly across
    every command that takes a machine."""

    COMMANDS = [
        ["compile", "{path}", "--machine", "bogus"],
        ["run", "{path}", "minmax", "1,2", "2", "0,0",
         "--machine", "bogus"],
        ["schedule", "{path}", "--machine", "bogus"],
        ["dot", "{path}", "--machine", "bogus"],
        ["verify", "{path}", "--machine", "bogus"],
        ["stats", "{path}", "--machine", "bogus"],
        ["serve", "--machine", "bogus"],
        ["chaos", "--n", "1", "--machine", "bogus"],
        ["fuzz", "--n", "1", "--machines", "rs6k,bogus"],
        ["scorecard", "--machines", "bogus"],
    ]

    @pytest.mark.parametrize("argv", COMMANDS, ids=lambda a: a[0])
    def test_unknown_machine(self, argv, c_file, capsys):
        argv = [a.format(path=c_file) for a in argv]
        assert main(argv) == 2
        captured = capsys.readouterr()
        err = captured.err
        assert err.startswith("error: unknown machine 'bogus'")
        assert "available:" in err
        assert "rs6k" in err and "xdp" in err  # the zoo is listed
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_known_machines_still_parse(self, c_file):
        # no argparse choices= left behind: every zoo name is accepted
        from repro.machine.configs import ZOO

        for name in ZOO:
            assert main(["compile", c_file, "--machine", name,
                         "--level", "none"]) == 0


class TestScorecardCommand:
    def test_fast_single_machine_matrix(self, capsys):
        assert main(["scorecard", "--machines", "ss1"]) == 0
        out = capsys.readouterr().out
        assert "machine ss1 [ok]" in out
        assert "minmax" in out


class TestChaosCommand:
    def test_smoke_sweep_exits_zero(self, capsys):
        assert main(["chaos", "--n", "2", "--seed", "1991"]) == 0
        out = capsys.readouterr().out
        assert "chaos: 2 fault plans, seed 1991" in out
        assert "ok" in out

    def test_verbose_prints_every_case(self, capsys):
        assert main(["chaos", "--n", "2", "--seed", "1991",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert out.count("seed ") >= 2
        assert "->" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])
