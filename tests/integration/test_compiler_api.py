"""Tests for the top-level compiler API (repro.compile_c)."""

import pytest

from repro import (
    CompileResult,
    PipelineConfig,
    ScheduleLevel,
    compile_c,
    rs6k,
    superscalar,
)

SOURCE = """
int add3(int x) { return x + 3; }
int sum(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
"""


class TestCompile:
    def test_all_functions_compiled(self):
        result = compile_c(SOURCE)
        assert {u.name for u in result} == {"add3", "sum"}
        assert result.level is ScheduleLevel.SPECULATIVE

    def test_missing_function_error_lists_names(self):
        result = compile_c(SOURCE)
        with pytest.raises(KeyError, match="add3"):
            result["nope"]

    def test_assembly_listing(self):
        result = compile_c(SOURCE)
        text = result["add3"].assembly()
        assert text.startswith("function add3")
        assert "AI" in text and "RET" in text

    def test_config_level_must_agree(self):
        with pytest.raises(ValueError, match="disagrees"):
            compile_c(SOURCE, level=ScheduleLevel.USEFUL,
                      config=PipelineConfig(level=ScheduleLevel.NONE))

    def test_custom_machine(self):
        result = compile_c(SOURCE, machine=superscalar(4))
        assert result.machine.name == "ss4"

    def test_elapsed_time_tracked(self):
        result = compile_c(SOURCE)
        assert result.total_elapsed_seconds > 0


class TestRun:
    def test_scalar_and_array_args(self):
        result = compile_c(SOURCE)
        run = result["sum"].run([1, 2, 3, 4], 4)
        assert run.return_value == 10
        assert run.cycles > 0
        assert run.instructions > 0
        assert run.arrays == [[1, 2, 3, 4]]

    def test_array_mutation_returned(self):
        src = "int f(int a[]) { a[1] = 42; return 0; }"
        run = compile_c(src)["f"].run([0, 0, 0])
        assert run.arrays == [[0, 42, 0]]

    def test_wrong_arity(self):
        result = compile_c(SOURCE)
        with pytest.raises(TypeError, match="takes 1 arguments"):
            result["add3"].run(1, 2)

    def test_wrong_arg_types(self):
        result = compile_c(SOURCE)
        with pytest.raises(TypeError, match="must be a list"):
            result["sum"].run(5, 4)
        with pytest.raises(TypeError, match="must be an int"):
            result["sum"].run([1], [2])

    def test_call_handlers(self):
        src = "int f(int x) { return helper(x) * 2; }"
        run = compile_c(src)["f"].run(
            5, call_handlers={"helper": lambda a: [a[0] + 1]})
        assert run.return_value == 12

    def test_levels_preserve_semantics_and_do_not_slow_down(self):
        data = list(range(20))
        cycles = {}
        for level in ScheduleLevel:
            result = compile_c(SOURCE, level=level)
            run = result["sum"].run(data, 20)
            assert run.return_value == sum(data)
            cycles[level] = run.cycles
        assert cycles[ScheduleLevel.SPECULATIVE] <= cycles[ScheduleLevel.NONE]

    def test_timeline_rendering(self):
        result = compile_c(SOURCE)
        run = result["sum"].run([1, 2, 3], 3)
        text = run.timeline(result.machine, max_cycles=40)
        assert "X" in text
        lines = text.splitlines()
        assert len(lines) >= 5

    def test_icache_config_through_run(self):
        from repro.sim import ICacheConfig, SimConfig
        result = compile_c(SOURCE)
        run = result["sum"].run(
            [1, 2, 3], 3,
            sim_config=SimConfig(icache=ICacheConfig(size=64, line=32)))
        assert run.timing.icache_misses > 0

    def test_two_arrays_disjoint_memory(self):
        src = """
int f(int a[], int b[]) {
    a[0] = 1;
    b[0] = 2;
    return a[0] + b[0];
}
"""
        run = compile_c(src)["f"].run([0], [0])
        assert run.return_value == 3
        assert run.arrays == [[1], [2]]
