"""Width monotonicity: wider machines over generated mini-C programs.

Two layers, matching what is actually provable:

* **Same-trace monotonicity is a theorem.**  For a *fixed* instruction
  trace, in-order issue on a uniformly wider machine can never be
  slower: by induction over the trace, if the wide machine ever bunched
  instructions into an earlier cycle than the narrow one, the narrow
  machine must have had a free slot at that cycle too (its capacities
  are a subset), contradicting the assumption it issued later.  The test
  asserts the strict form, no allowance.

* **Cross-schedule monotonicity is only empirical.**  When each machine
  gets its *own* compiled schedule, greedy list scheduling has Graham
  anomalies: a wider target can seduce the scheduler into a schedule
  that simulates slightly slower.  Measured over the generator
  distribution the worst inversion is ~1.18x (see the envelope below),
  so the test asserts the documented envelope -- and on failure shrinks
  the program to a minimal reproducer before reporting, so the assertion
  message is actionable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_c
from repro.machine import superscalar
from repro.sched.candidates import ScheduleLevel
from repro.sim.machine_sim import TraceSimulator
from repro.verify.differential import run_differential
from repro.verify.generator import GenProgram, generate_program
from repro.verify.shrink import shrink_program

#: the zoo's in-order width ladder (each step is uniformly wider)
LADDER = ("ss1", "ss2", "ss4", "ss8")

#: documented empirical envelope for cross-schedule inversions: worst
#: observed over 300 generator seeds x 3 levels is 1.18x, so only a
#: systematic anomaly (not scheduler noise) can trip 1.25x + 8 cycles
_ENVELOPE_FACTOR = 1.25
_ENVELOPE_CYCLES = 8

_LEVELS = (ScheduleLevel.NONE, ScheduleLevel.USEFUL,
           ScheduleLevel.SPECULATIVE)


def _trace_cycles(trace, machine) -> int:
    sim = TraceSimulator(machine)
    issue = [sim.issue(ins) for ins in trace]
    return (max(issue) + 1) if issue else 0


@given(st.integers(0, 2 ** 20))
@settings(max_examples=10, deadline=None)
def test_same_trace_wider_is_never_slower(seed):
    # one schedule (compiled for the narrowest machine), timed on every
    # rung of the ladder: the theorem, so strict
    program = generate_program(seed)
    unit = compile_c(program.source, machine=superscalar(1),
                     level=ScheduleLevel.SPECULATIVE)
    run = unit.run(program.entry, *program.entry_args)
    trace = run.execution.instr_trace
    cycles = [_trace_cycles(trace, superscalar(w)) for w in (1, 2, 4, 8)]
    for narrow, wide in zip(cycles, cycles[1:]):
        assert wide <= narrow, cycles


def _envelope_violation(program: GenProgram) -> bool:
    """True iff some ladder step is slower than the documented envelope."""
    outcome = run_differential(program, machines=LADDER)
    if not outcome.ok:
        return False  # a differential failure is a different test's job
    for level in _LEVELS:
        cycles = [outcome.cycles(m, level) for m in LADDER]
        for narrow, wide in zip(cycles, cycles[1:]):
            if wide > narrow * _ENVELOPE_FACTOR + _ENVELOPE_CYCLES:
                return True
    return False


@given(st.integers(0, 2 ** 20))
@settings(max_examples=8, deadline=None)
def test_cross_schedule_width_inversions_stay_in_envelope(seed):
    program = generate_program(seed)
    if not _envelope_violation(program):
        return
    minimal = shrink_program(program, _envelope_violation)
    outcome = run_differential(minimal, machines=LADDER)
    table = {
        level.value: [outcome.cycles(m, level) for m in LADDER]
        for level in _LEVELS
    }
    pytest.fail(
        f"widening {LADDER} slowed a schedule beyond the documented "
        f"envelope ({_ENVELOPE_FACTOR}x + {_ENVELOPE_CYCLES}); cycles "
        f"per level {table}; minimal program:\n{minimal.source}")


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(40))
def test_cross_schedule_envelope_sweep(seed):
    # the broader sweep CI runs nightly: same property, fixed seeds
    program = generate_program(seed)
    assert not _envelope_violation(program), (
        f"seed {seed}: shrink with "
        f"tests/integration/test_width_monotonicity.py helpers")
