"""Zero-length edge cases: empty traces and degenerate (single-return)
functions must flow through every layer without special-casing."""

import pytest

from repro.compiler import RunResult, compile_c
from repro.machine.rs6k import rs6k
from repro.sched.candidates import ScheduleLevel
from repro.sim.executor import ExecutionResult
from repro.sim.machine_sim import SimulationResult
from repro.sim.timeline import format_timeline

SINGLE_RETURN = """
int f() {
    return 41;
}
"""

PASS_THROUGH = """
int f(int a) {
    return a;
}
"""


def _empty_timing() -> SimulationResult:
    return SimulationResult(cycles=0, instructions=0)


def _empty_execution() -> ExecutionResult:
    return ExecutionResult(regs={}, memory={}, block_trace=[],
                           instr_trace=[], calls=[], steps=0,
                           return_value=None)


def test_empty_trace_through_format_timeline():
    text = format_timeline([], _empty_timing(), rs6k())
    # renders the (empty) header line and nothing else
    assert text.endswith("\n")
    assert len(text.splitlines()) == 1


def test_empty_trace_length_mismatch_is_rejected():
    timing = SimulationResult(cycles=1, instructions=1, issue_cycles=[0])
    with pytest.raises(ValueError):
        format_timeline([], timing, rs6k())


def test_empty_run_result_properties():
    run = RunResult(execution=_empty_execution(), timing=_empty_timing())
    assert run.return_value is None
    assert run.cycles == 0
    assert run.instructions == 0
    assert run.arrays == []
    assert run.timing.ipc == 0.0  # no division by zero


def test_empty_run_result_timeline():
    run = RunResult(execution=_empty_execution(), timing=_empty_timing())
    assert len(run.timeline(rs6k()).splitlines()) == 1


@pytest.mark.parametrize("level", list(ScheduleLevel))
@pytest.mark.parametrize("source, args, expected",
                         [(SINGLE_RETURN, (), 41),
                          (PASS_THROUGH, (7,), 7)])
def test_single_return_function_all_levels(level, source, args, expected):
    result = compile_c(source, level=level)
    unit = result["f"]
    run = unit.run(*args)
    assert run.return_value == expected
    assert run.cycles > 0
    assert run.timeline(rs6k())  # renders without error


@pytest.mark.parametrize("level", list(ScheduleLevel))
def test_single_return_function_verifies(level):
    from repro.xform.pipeline import PipelineConfig

    result = compile_c(SINGLE_RETURN, level=level,
                       config=PipelineConfig(level=level, verify=True))
    for report in result["f"].report.verify_reports:
        assert report.ok
