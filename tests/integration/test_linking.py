"""Cross-function call linking tests."""

import pytest

from repro import ScheduleLevel, compile_c


class TestLinkedCalls:
    def test_simple_call(self):
        result = compile_c("""
int square(int x) { return x * x; }
int sumsq(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + square(a[i]); }
    return s;
}
""")
        run = result.run("sumsq", [1, 2, 3, 4], 4)
        assert run.return_value == 1 + 4 + 9 + 16

    def test_recursion(self):
        result = compile_c("""
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
""")
        assert result.run("fact", 6).return_value == 720

    def test_mutual_recursion(self):
        result = compile_c("""
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n)  { if (n == 0) return 0; return is_even(n - 1); }
""")
        assert result.run("is_even", 10).return_value == 1
        assert result.run("is_even", 7).return_value == 0

    def test_explicit_handlers_win(self):
        result = compile_c("""
int helper(int x) { return x + 1; }
int f(int x) { return helper(x); }
""")
        run = result.run("f", 5, call_handlers={
            "helper": lambda args: [args[0] * 100]})
        assert run.return_value == 500

    def test_array_functions_not_linkable(self):
        result = compile_c("""
int reader(int a[]) { return a[0]; }
int f(int x) { return reader(x); }
""")
        handlers = result.linked_handlers()
        assert "reader" not in handlers
        assert "f" in handlers

    def test_arity_mismatch_raises(self):
        result = compile_c("""
int two(int x, int y) { return x + y; }
int f(int x) { return two(x); }
""")
        with pytest.raises(TypeError, match="takes 2"):
            result.run("f", 1)

    def test_semantics_across_levels(self):
        src = """
int clamp(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}
int process(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + clamp(a[i], 0, 10); }
    return s;
}
"""
        data = [-5, 3, 20, 7, 100, -1]
        expected = sum(min(max(v, 0), 10) for v in data)
        for level in ScheduleLevel:
            result = compile_c(src, level=level)
            assert result.run("process", list(data), 6).return_value \
                == expected


class TestHandlerCache:
    """``linked_handlers`` memoizes its table; the cache must stay correct
    for recursive and mutual calls, and must never absorb per-run
    overrides."""

    RECURSIVE = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
"""

    MUTUAL = """
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n)  { if (n == 0) return 0; return is_even(n - 1); }
"""

    def test_cache_returns_same_table(self):
        result = compile_c(self.RECURSIVE)
        assert result.linked_handlers() is result.linked_handlers()

    def test_recursion_resolves_through_cache(self):
        result = compile_c(self.RECURSIVE)
        # warm the cache, then run repeatedly through it
        result.linked_handlers()
        assert result.run("fib", 10).return_value == 55
        assert result.run("fib", 12).return_value == 144

    def test_mutual_recursion_resolves_through_cache(self):
        result = compile_c(self.MUTUAL)
        result.linked_handlers()
        assert result.run("is_even", 9).return_value == 0
        assert result.run("is_odd", 9).return_value == 1

    def test_overrides_do_not_pollute_cache(self):
        result = compile_c("""
int helper(int x) { return x + 1; }
int f(int x) { return helper(x); }
""")
        cached = result.linked_handlers()
        run = result.run("f", 5, call_handlers={
            "helper": lambda args: [args[0] * 100]})
        assert run.return_value == 500
        # the override was applied to a fresh table, not the cached one
        assert result.linked_handlers() is cached
        assert result.run("f", 5).return_value == 6

    def test_override_visible_to_nested_calls(self):
        """A per-run override must win even for calls made from inside
        another linked function (depth > 1)."""
        result = compile_c("""
int leaf(int x) { return x; }
int mid(int x) { return leaf(x) + 1; }
int top(int x) { return mid(x) + 1; }
""")
        run = result.run("top", 3, call_handlers={
            "leaf": lambda args: [args[0] * 10]})
        assert run.return_value == 32  # leaf override seen via mid
