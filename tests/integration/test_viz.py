"""DOT-export tests."""

from repro.machine import rs6k
from repro.pdg import RegionPDG, build_block_ddg
from repro.viz import cfg_to_dot, cspdg_to_dot, ddg_to_dot


def test_cfg_dot(figure2):
    dot = cfg_to_dot(figure2)
    assert dot.startswith('digraph "minmax_loop_cfg"')
    assert dot.rstrip().endswith("}")
    assert '"CL.0" -> "CL.4" [label="T"];' in dot
    assert '"CL.0" -> "BL2" [label="F"];' in dot
    assert '"CL.9" -> "CL.0"' in dot  # the back edge
    assert '"CL.9" -> EXIT;' in dot
    assert 'ENTRY -> "CL.0";' in dot


def test_cfg_dot_with_instructions(figure2):
    dot = cfg_to_dot(figure2, instructions=True)
    assert "I1 L     r12=a(r31,4)" in dot
    assert "\\l" in dot  # left-justified multi-line labels


def test_cspdg_dot(figure2):
    pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
    dot = cspdg_to_dot(pdg)
    # solid control-dependence edges and dashed equivalence edges
    assert '"CL.0" -> "BL2"' in dot
    assert '"CL.0" -> "CL.9" [style=dashed, arrowhead=open];' in dot
    assert '"BL2" -> "CL.6" [style=dashed, arrowhead=open];' in dot


def test_ddg_dot(figure2):
    ddg = build_block_ddg(figure2.block("CL.0"), rs6k())
    dot = ddg_to_dot(ddg, name="bl1")
    assert '"I3" -> "I4" [style=solid, label="d=3"];' in dot
    assert '"I1" -> "I2" [style=dashed];' in dot  # anti dependence


def test_quoting():
    from repro.viz import _quote
    assert _quote('a"b') == '"a\\"b"'
    assert _quote("plain") == '"plain"'
