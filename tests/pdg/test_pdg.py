"""RegionPDG structure tests: forward graph, reachable pairs, barriers."""

import pytest

from repro.ir import parse_function
from repro.machine import rs6k
from repro.pdg import REGION_EXIT, RegionPDG, abstract_label, make_barrier


@pytest.fixture
def pdg(figure2):
    return RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")


class TestForwardGraph:
    def test_back_edge_removed(self, pdg):
        assert "CL.0" not in pdg.forward.succs("CL.9")
        assert REGION_EXIT in pdg.forward.succs("CL.9")

    def test_acyclic(self, pdg):
        pdg.forward.topological_order("CL.0")

    def test_topo_order_valid(self, pdg):
        pos = {label: i for i, label in enumerate(pdg.topo_labels)}
        assert pos["CL.0"] == 0
        assert pos["CL.9"] == len(pdg.topo_labels) - 1
        assert pos["BL2"] < pos["CL.6"]
        assert pos["CL.4"] < pos["CL.11"]

    def test_schedulable_labels_are_members(self, pdg):
        assert set(pdg.schedulable_labels()) == pdg.member_labels
        assert len(pdg.schedulable_labels()) == 10


class TestReachablePairs:
    def test_linear_chain_pairs(self, pdg):
        assert ("CL.0", "CL.9") in pdg.reachable_pairs
        assert ("BL2", "CL.6") in pdg.reachable_pairs
        assert ("BL2", "BL3") in pdg.reachable_pairs

    def test_parallel_blocks_not_paired(self, pdg):
        assert ("BL2", "CL.4") not in pdg.reachable_pairs
        assert ("CL.4", "BL2") not in pdg.reachable_pairs
        assert ("BL3", "BL5") in pdg.reachable_pairs  # BL3 falls into CL.6

    def test_no_self_pairs_or_backward(self, pdg):
        for a, b in pdg.reachable_pairs:
            assert a != b
        assert ("CL.9", "CL.0") not in pdg.reachable_pairs


class TestBarriers:
    def test_make_barrier_summarises(self, figure2):
        instrs = list(figure2.block("CL.9").instrs)
        barrier = make_barrier(figure2, "CL.9", instrs)
        from repro.ir import cr, gpr
        assert gpr(29) in barrier.reg_defs()
        assert gpr(27) in barrier.reg_uses()
        assert cr(4) in barrier.reg_defs()
        assert barrier.is_call and barrier.uid > 0

    def test_abstract_label_shape(self):
        label = abstract_label("CL.0")
        assert label == "<loop CL.0>"
        # can never collide with a parsed block label (spaces are illegal)
        assert " " in label


class TestHeaderVariants:
    def test_abstract_header_region(self):
        # a function whose entry block sits inside the (only) loop: the
        # body region's entry node is the loop's abstract label
        func = parse_function("""
function allloop
H:
    AI r1=r1,1
L:
    C cr0=r1,r9
    BT H,cr0,0x1/lt
""")
        from repro.sched import find_regions, build_region_pdg
        regions = find_regions(func)
        body = regions[-1]
        assert body.header_node == abstract_label("H")
        pdg = build_region_pdg(func, rs6k(), body)
        assert pdg.schedulable_labels() == []
        assert pdg.topo_labels == [abstract_label("H")]
