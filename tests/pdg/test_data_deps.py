"""Data-dependence tests against the paper's Section 4.2 walkthrough."""

import pytest

from repro.machine import rs6k
from repro.pdg import (
    DepKind,
    RegionPDG,
    build_block_ddg,
    build_region_ddg,
    topo_order,
    transitive_reduce,
)
from repro.ir import parse_function


@pytest.fixture
def pdg(figure2):
    return RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")


def by_uid(func):
    return {ins.uid: ins for ins in func.instructions()}


class TestSection42Walkthrough:
    """The paper computes BL1's dependences explicitly."""

    def test_anti_dependence_i1_i2(self, figure2, pdg):
        # "an anti-dependence from (I1) to (I2), since (I1) uses r31 and
        # (I2) defines a new value for r31"
        ins = by_uid(figure2)
        edge = pdg.ddg.edge(ins[1], ins[2])
        assert edge is not None and edge.kind is DepKind.ANTI

    def test_delayed_load_edge_i2_i3(self, figure2, pdg):
        # "the edge ((I2),(I3)) carries a one cycle delay"
        ins = by_uid(figure2)
        edge = pdg.ddg.edge(ins[2], ins[3])
        assert edge.kind is DepKind.FLOW and edge.delay == 1

    def test_compare_branch_edge_i3_i4(self, figure2, pdg):
        # "this edge has a three cycle delay"
        ins = by_uid(figure2)
        edge = pdg.ddg.edge(ins[3], ins[4])
        assert edge.kind is DepKind.FLOW and edge.delay == 3

    def test_transitive_edges_elided(self, figure2, pdg):
        # "((I1),(I3)) is not computed since it is transitive", likewise
        # ((I1),(I4)) and ((I2),(I4))
        ins = by_uid(figure2)
        assert pdg.ddg.edge(ins[1], ins[3]) is None
        assert pdg.ddg.edge(ins[1], ins[4]) is None
        assert pdg.ddg.edge(ins[2], ins[4]) is None

    def test_ddg_is_acyclic(self, pdg):
        # Section 4.2: "the resultant PDG is acyclic"
        topo_order(pdg.ddg)  # raises on a cycle


class TestInterblock:
    @pytest.fixture
    def full_pdg(self, figure2):
        """Unreduced dependence graph: every natural edge present."""
        return RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0",
                         reduce_ddg=False)

    def test_flow_across_blocks(self, figure2, full_pdg):
        # I1 defines r12 used by I5 (BL2), I15 (BL8), I17 (BL9)
        ins = by_uid(figure2)
        for user in (5, 15, 17):
            edge = full_pdg.ddg.edge(ins[1], ins[user])
            assert edge is not None and edge.kind is DepKind.FLOW

    def test_anti_across_blocks(self, figure2, pdg):
        # I4 uses cr7; I8 (BL4) redefines it -> anti edge I4 -> I8.
        # This edge survives reduction: it is what stops I8 from moving
        # above BL1's terminator.
        ins = by_uid(figure2)
        edge = pdg.ddg.edge(ins[4], ins[8])
        assert edge is not None and edge.kind is DepKind.ANTI

    def test_output_across_blocks(self, figure2, full_pdg):
        # I3 and I8 both define cr7 on one path
        ins = by_uid(figure2)
        edge = full_pdg.ddg.edge(ins[3], ins[8])
        assert edge is not None  # anti or output, but it must exist

    def test_reduction_respects_constraint_reachability(self, figure2, pdg,
                                                        full_pdg):
        # whatever reduction removes must still be *implied*: every pair
        # connected in the full graph stays connected in the reduced one
        def reachable_pairs(ddg):
            pairs = set()
            for src in ddg.instructions:
                stack = [src]
                seen = set()
                while stack:
                    node = stack.pop()
                    for e in ddg.succs(node):
                        if id(e.dst) not in seen:
                            seen.add(id(e.dst))
                            pairs.add((src.uid, e.dst.uid))
                            stack.append(e.dst)
            return pairs

        assert reachable_pairs(full_pdg.ddg) == reachable_pairs(pdg.ddg)

    def test_no_edges_between_parallel_blocks(self, figure2, pdg):
        # BL2 (I5) and BL6 (I12) lie on exclusive paths: no dependence,
        # even though both define cr6
        ins = by_uid(figure2)
        assert pdg.ddg.edge(ins[5], ins[12]) is None
        assert pdg.ddg.edge(ins[12], ins[5]) is None


class TestMemoryEdges:
    def test_two_loads_commute(self):
        func = parse_function("""
function loads
a:
    L r1=x(r10,0)
    L r2=x(r10,4)
""")
        ddg = build_block_ddg(func.block("a"), rs6k())
        i1, i2 = func.block("a").instrs
        assert ddg.edge(i1, i2) is None

    def test_store_load_conflict(self):
        func = parse_function("""
function sl
a:
    ST r1=>x(r10,0)
    L  r2=y(r11,0)
""")
        ddg = build_block_ddg(func.block("a"), rs6k())
        st, ld = func.block("a").instrs
        edge = ddg.edge(st, ld)
        assert edge is not None and edge.kind is DepKind.MEM

    def test_disambiguated_store_load(self):
        # same base register, disjoint displacements: proven independent
        func = parse_function("""
function dis
a:
    ST r1=>x(r10,0)
    L  r2=x(r10,4)
""")
        ddg = build_block_ddg(func.block("a"), rs6k())
        st, ld = func.block("a").instrs
        assert ddg.edge(st, ld) is None

    def test_call_conflicts_with_everything(self):
        func = parse_function("""
function callmem
a:
    L r1=x(r10,0)
    CALL f(r1)
    ST r1=>x(r10,64)
""")
        ddg = build_block_ddg(func.block("a"), rs6k())
        ld, call, st = func.block("a").instrs
        assert ddg.edge(ld, call) is not None
        assert ddg.edge(call, st) is not None

    def test_interblock_memory_conservative(self):
        func = parse_function("""
function im
a:
    ST r1=>x(r10,0)
b:
    L r2=x(r10,4)
""")
        pairs = {("a", "b")}
        ddg = build_region_ddg(list(func.blocks), pairs, rs6k())
        st = func.block("a").instrs[0]
        ld = func.block("b").instrs[0]
        # across blocks the base value is path-dependent: keep the edge
        assert ddg.edge(st, ld) is not None


class TestTransitiveReduction:
    def test_keeps_heavier_direct_edge(self):
        # a: compare feeding both a use and (transitively) a branch --
        # the direct compare->branch edge carries delay 3 and must be kept
        # even though a zero-delay path exists
        func = parse_function("""
function heavy
a:
    C  cr0=r1,r2
    LR r3=r1
    BT a,cr0,0x1/lt
""")
        ddg = build_block_ddg(func.block("a"), rs6k(), reduce=False)
        cmp_i, lr_i, bt_i = func.block("a").instrs
        # fabricate the scenario: add zero-delay chain cmp -> lr -> bt
        ddg.add_edge(cmp_i, lr_i, DepKind.OUTPUT, 0)
        ddg.add_edge(lr_i, bt_i, DepKind.ANTI, 0)
        transitive_reduce(ddg, rs6k())
        direct = ddg.edge(cmp_i, bt_i)
        assert direct is not None and direct.delay == 3

    def test_removes_zero_delay_transitive(self, figure2, pdg):
        ins = by_uid(figure2)
        # I1 -> I5 (flow r12) survives, but I1 -> I3 (covered via I2) died
        assert pdg.ddg.edge(ins[1], ins[3]) is None
        assert pdg.ddg.edge(ins[1], ins[5]) is not None

    def test_reduction_preserves_longest_paths(self, figure2):
        machine = rs6k()
        full = RegionPDG(figure2, machine, list(figure2.blocks), "CL.0",
                         reduce_ddg=False).ddg
        reduced = RegionPDG(figure2, machine, list(figure2.blocks),
                            "CL.0").ddg

        def longest_paths(ddg):
            order = topo_order(ddg)
            dist = {}
            for src in order:
                d = {id(src): 0}
                for node in order:
                    if id(node) not in d:
                        continue
                    for e in ddg.succs(node):
                        w = (machine.exec_time(e.src) + e.delay
                             if e.kind is DepKind.FLOW else 0)
                        cand = d[id(node)] + w
                        if cand > d.get(id(e.dst), -1):
                            d[id(e.dst)] = cand
                for dst_key, value in d.items():
                    dist[(id(src), dst_key)] = value
            return dist

        assert longest_paths(full) == longest_paths(reduced)
