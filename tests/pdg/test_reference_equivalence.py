"""Property tests: the optimized DDG construction is observably identical
to the seed reference implementations kept in :mod:`repro.pdg.reference`.

Three properties over a fixed-seed generated corpus:

* the per-block-summary region builder produces exactly the seed's edge
  set (endpoints, kinds, delays, registers);
* the shared-table transitive reduction removes exactly the seed's edge
  set;
* reduction never changes schedules (removed edges are implied by
  longer paths), and the whole optimized pipeline emits byte-identical
  assembly to the reference pipeline at every level.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_c
from repro.machine.configs import CONFIGS
from repro.pdg import data_deps
from repro.pdg import pdg as region_pdg_module
from repro.pdg.data_deps import build_region_ddg, transitive_reduce
from repro.pdg.reference import (
    build_region_ddg_reference,
    reference_pipeline,
    seed_pipeline,
    transitive_reduce_reference,
)
from repro.sched.candidates import ScheduleLevel
from repro.sched.regions import build_region_pdg, find_regions
from repro.verify.fuzz import derive_seed
from repro.verify.generator import generate_program

CORPUS_SEED = 2026
CORPUS_SIZE = 8


def _edge_key(edge):
    return (edge.src.uid, edge.dst.uid, edge.kind.name, edge.delay,
            None if edge.reg is None else repr(edge.reg))


def _edge_keys(ddg):
    return sorted(_edge_key(e) for e in ddg.iter_edges())


@pytest.fixture(scope="module")
def corpus():
    return [generate_program(derive_seed(CORPUS_SEED, i))
            for i in range(CORPUS_SIZE)]


@pytest.fixture(scope="module")
def region_inputs(corpus):
    """(blocks, reachable_pairs) of every region of every corpus program."""
    machine = CONFIGS["rs6k"]()
    inputs = []
    for program in corpus:
        result = compile_c(program.source, machine=machine,
                           level=ScheduleLevel.NONE)
        for unit in result:
            for spec in find_regions(unit.func):
                pdg = build_region_pdg(unit.func, machine, spec,
                                       reduce_ddg=False)
                inputs.append((pdg._ddg_blocks(), pdg.reachable_pairs))
    assert inputs, "corpus produced no regions"
    return inputs


def test_region_builder_matches_reference_edge_set(region_inputs):
    machine = CONFIGS["rs6k"]()
    for blocks, pairs in region_inputs:
        new = build_region_ddg(blocks, pairs, machine, reduce=False)
        ref = build_region_ddg_reference(blocks, pairs, machine,
                                         reduce=False)
        assert _edge_keys(new) == _edge_keys(ref)


def test_transitive_reduce_removes_same_edges(region_inputs):
    machine = CONFIGS["rs6k"]()
    total_removed = 0
    for blocks, pairs in region_inputs:
        new = build_region_ddg(blocks, pairs, machine, reduce=False)
        ref = build_region_ddg_reference(blocks, pairs, machine,
                                         reduce=False)
        before = _edge_keys(new)
        assert before == _edge_keys(ref)
        removed_new = transitive_reduce(new, machine)
        removed_ref = transitive_reduce_reference(ref, machine)
        assert removed_new == removed_ref
        assert _edge_keys(new) == _edge_keys(ref)
        assert len(_edge_keys(new)) == len(before) - removed_new
        total_removed += removed_new
    assert total_removed > 0, "corpus never exercised the reduction"


def _compile_all(source, machine_name, level):
    result = compile_c(source, machine=CONFIGS[machine_name](),
                       level=level)
    return {unit.name: unit.assembly() for unit in result}


def test_reduction_does_not_change_schedules(corpus, monkeypatch):
    """Scheduling a reduced graph == scheduling the full graph: every
    removed edge is implied by a longer path, so readiness and earliest
    start times are unaffected."""
    for program in corpus[:4]:
        reduced = _compile_all(program.source, "rs6k",
                               ScheduleLevel.SPECULATIVE)
        with monkeypatch.context() as m:
            m.setattr(data_deps, "transitive_reduce",
                      lambda ddg, machine: 0)
            unreduced = _compile_all(program.source, "rs6k",
                                     ScheduleLevel.SPECULATIVE)
        assert reduced == unreduced


def test_optimized_pipeline_matches_reference_assembly(corpus):
    for program in corpus:
        for level in ScheduleLevel:
            new = _compile_all(program.source, "rs6k", level)
            with reference_pipeline():
                ref = _compile_all(program.source, "rs6k", level)
            assert new == ref, (
                f"seed {program.seed} diverged at level {level.value}")


def test_optimized_pipeline_matches_seed_pipeline(corpus):
    """The full seed baseline (reference DDG + per-query readiness +
    uncached analyses + eager verifier) also schedules identically."""
    for program in corpus[:3]:
        for machine_name in ("rs6k", "scalar"):
            new = _compile_all(program.source, machine_name,
                               ScheduleLevel.SPECULATIVE)
            with seed_pipeline():
                ref = _compile_all(program.source, machine_name,
                                   ScheduleLevel.SPECULATIVE)
            assert new == ref


def test_patching_restores_cleanly():
    saved = (data_deps.build_region_ddg, data_deps.transitive_reduce,
             region_pdg_module.build_region_ddg)
    with reference_pipeline():
        assert data_deps.build_region_ddg is build_region_ddg_reference
    assert (data_deps.build_region_ddg, data_deps.transitive_reduce,
            region_pdg_module.build_region_ddg) == saved
