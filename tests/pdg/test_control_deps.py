"""Forward control dependence tests against the paper's Figure 4."""

from repro.cfg import ControlFlowGraph, Digraph, ENTRY, EXIT, dominator_tree
from repro.pdg import ControlDep, control_dependences, forward_graph


def figure2_cd_sets(figure2):
    cfg = ControlFlowGraph(figure2)
    dom = dominator_tree(cfg.graph, ENTRY)
    fwd = forward_graph(cfg.graph, dom)
    return control_dependences(fwd, ENTRY, EXIT)


class TestFigure4:
    def test_bl1_and_bl10_depend_on_nothing(self, figure2):
        cd = figure2_cd_sets(figure2)
        assert cd["CL.0"] == frozenset()
        assert cd["CL.9"] == frozenset()

    def test_bl2_bl4_identically_dependent(self, figure2):
        # "BL2 and BL4 will be executed if the condition at the end of
        # BL1 will be evaluated to TRUE"
        cd = figure2_cd_sets(figure2)
        assert cd["BL2"] == cd["CL.6"]
        assert cd["BL2"] == frozenset({ControlDep("CL.0", "BL2")})

    def test_bl6_bl8_identically_dependent(self, figure2):
        cd = figure2_cd_sets(figure2)
        assert cd["CL.4"] == cd["CL.11"]
        assert cd["CL.4"] == frozenset({ControlDep("CL.0", "CL.4")})

    def test_arm_blocks_depend_on_their_tests(self, figure2):
        cd = figure2_cd_sets(figure2)
        assert cd["BL3"] == frozenset({ControlDep("BL2", "BL3")})
        assert cd["BL5"] == frozenset({ControlDep("CL.6", "BL5")})
        assert cd["BL7"] == frozenset({ControlDep("CL.4", "BL7")})
        assert cd["BL9"] == frozenset({ControlDep("CL.11", "BL9")})

    def test_all_sets_have_at_most_one_condition(self, figure2):
        # in this loop no block is controlled by two branches at once
        cd = figure2_cd_sets(figure2)
        for label in (b.label for b in figure2.blocks):
            assert len(cd[label]) <= 1


class TestForwardGraph:
    def test_back_edge_removed(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        fwd = forward_graph(cfg.graph, dom)
        assert "CL.0" not in fwd.succs("CL.9")
        assert fwd.succs("CL.0") == cfg.graph.succs("CL.0")

    def test_forward_graph_is_acyclic(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        fwd = forward_graph(cfg.graph, dom)
        fwd.topological_order(ENTRY)  # raises on a cycle


class TestDiamond:
    def test_plain_diamond(self):
        g = Digraph()
        for e in [("E", "a"), ("a", "b"), ("a", "c"), ("b", "d"),
                  ("c", "d"), ("d", "X")]:
            g.add_edge(*e)
        cd = control_dependences(g, "E", "X")
        assert cd["b"] == frozenset({ControlDep("a", "b")})
        assert cd["c"] == frozenset({ControlDep("a", "c")})
        assert cd["d"] == frozenset()

    def test_nested_condition(self):
        # a -> (b -> (c|d) -> e | f) -> g
        g = Digraph()
        for e in [("E", "a"), ("a", "b"), ("a", "f"), ("b", "c"),
                  ("b", "d"), ("c", "e"), ("d", "e"), ("e", "g"),
                  ("f", "g"), ("g", "X")]:
            g.add_edge(*e)
        cd = control_dependences(g, "E", "X")
        assert cd["c"] == frozenset({ControlDep("b", "c")})
        assert cd["e"] == cd["b"] == frozenset({ControlDep("a", "b")})
        assert cd["g"] == frozenset()
