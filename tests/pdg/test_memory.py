"""Tests for the symbolic base+offset memory disambiguation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ir import Instruction, MemRef, Opcode, gpr
from repro.pdg import AddressTracker, SymbolicAddress, may_conflict


def load(base, disp, width=4):
    return Instruction(Opcode.L, defs=(gpr(99),), uses=(base,),
                       mem=MemRef(base, disp, width))


def store(base, disp, width=4):
    return Instruction(Opcode.ST, uses=(gpr(98), base),
                       mem=MemRef(base, disp, width))


class TestSymbolicAddress:
    def test_same_origin_disjoint(self):
        a = SymbolicAddress("o", 0, 4)
        b = SymbolicAddress("o", 4, 4)
        assert not a.conflicts_with(b)

    def test_same_origin_overlap(self):
        a = SymbolicAddress("o", 0, 8)
        b = SymbolicAddress("o", 4, 4)
        assert a.conflicts_with(b)

    def test_different_origins_conflict(self):
        a = SymbolicAddress("o1", 0, 4)
        b = SymbolicAddress("o2", 100, 4)
        assert a.conflicts_with(b)

    def test_unknown_conflicts(self):
        assert SymbolicAddress("o", 0, 4).conflicts_with(None)

    @given(st.integers(-64, 64), st.integers(-64, 64),
           st.integers(1, 16), st.integers(1, 16))
    def test_overlap_matches_interval_maths(self, o1, o2, w1, w2):
        a = SymbolicAddress("x", o1, w1)
        b = SymbolicAddress("x", o2, w2)
        overlap = max(o1, o2) < min(o1 + w1, o2 + w2)
        assert a.conflicts_with(b) == overlap


class TestAddressTracker:
    def test_figure2_loads_disambiguate(self):
        # I1: a(r31,4) and I2: a(r31,8) share the base value
        t = AddressTracker()
        a1 = t.address_of(MemRef(gpr(31), 4))
        a2 = t.address_of(MemRef(gpr(31), 8))
        assert not a1.conflicts_with(a2)

    def test_post_increment_tracked(self):
        # after LU r0,r31=a(r31,8), address a(r31,0) == old a(r31,8)
        t = AddressTracker()
        before = t.address_of(MemRef(gpr(31), 8))
        lu = Instruction(Opcode.LU, defs=(gpr(0), gpr(31)), uses=(gpr(31),),
                         mem=MemRef(gpr(31), 8))
        t.step(lu)
        after = t.address_of(MemRef(gpr(31), 0))
        assert after == before

    def test_ai_adjusts_delta(self):
        t = AddressTracker()
        before = t.address_of(MemRef(gpr(10), 12))
        ai = Instruction(Opcode.AI, defs=(gpr(10),), uses=(gpr(10),), imm=12)
        t.step(ai)
        after = t.address_of(MemRef(gpr(10), 0))
        assert after == before

    def test_lr_copies_state(self):
        t = AddressTracker()
        a = t.address_of(MemRef(gpr(1), 0))
        lr = Instruction(Opcode.LR, defs=(gpr(2),), uses=(gpr(1),))
        t.step(lr)
        b = t.address_of(MemRef(gpr(2), 4))
        assert a.origin == b.origin and b.offset == 4

    def test_li_gives_absolute_addresses(self):
        t = AddressTracker()
        for reg, value in ((gpr(1), 100), (gpr(2), 200)):
            t.step(Instruction(Opcode.LI, defs=(reg,), imm=value))
        a = t.address_of(MemRef(gpr(1), 0))
        b = t.address_of(MemRef(gpr(2), 0))
        assert a.origin == b.origin  # both constant
        assert not a.conflicts_with(b)

    def test_unknown_def_resets(self):
        t = AddressTracker()
        before = t.address_of(MemRef(gpr(1), 0))
        t.step(Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(2), gpr(3))))
        after = t.address_of(MemRef(gpr(1), 0))
        assert before.origin != after.origin
        assert before.conflicts_with(after)  # can't prove independence


class TestMayConflict:
    def test_load_load_never(self):
        assert not may_conflict(load(gpr(1), 0), None, load(gpr(2), 0), None)

    def test_store_store_unknown(self):
        assert may_conflict(store(gpr(1), 0), None, store(gpr(2), 0), None)

    def test_call_always(self):
        call = Instruction(Opcode.CALL, target="f")
        assert may_conflict(call, None, load(gpr(1), 0), None)
        assert may_conflict(store(gpr(1), 0), None, call, None)

    def test_non_memory_never(self):
        add = Instruction(Opcode.A, defs=(gpr(1),), uses=(gpr(2), gpr(3)))
        assert not may_conflict(add, None, store(gpr(1), 0), None)

    def test_disambiguated_pair(self):
        a = SymbolicAddress("o", 0, 4)
        b = SymbolicAddress("o", 8, 4)
        assert not may_conflict(store(gpr(1), 0), a, load(gpr(1), 8), b)
