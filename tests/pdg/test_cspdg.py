"""CSPDG tests: equivalence classes, EQUIV(A), speculation degrees."""

import pytest

from repro.machine import rs6k
from repro.pdg import RegionPDG

from ..conftest import PAPER_BLOCKS


@pytest.fixture
def pdg(figure2):
    return RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")


class TestEquivalenceClasses:
    def test_figure4_classes(self, pdg):
        classes = {frozenset(c) for c in pdg.cspdg.equivalence_classes}
        assert frozenset({"CL.0", "CL.9"}) in classes   # BL1 ~ BL10
        assert frozenset({"BL2", "CL.6"}) in classes    # BL2 ~ BL4
        assert frozenset({"CL.4", "CL.11"}) in classes  # BL6 ~ BL8
        singletons = {frozenset({b}) for b in ("BL3", "BL5", "BL7", "BL9")}
        assert singletons <= classes

    def test_classes_ordered_by_dominance(self, pdg):
        for cls in pdg.cspdg.equivalence_classes:
            for a, b in zip(cls, cls[1:]):
                assert pdg.dom.strictly_dominates(a, b)
                assert pdg.pdom.dominates(b, a)  # Definition 3

    def test_equiv_dominated(self, pdg):
        # EQUIV(A): equivalent to A and dominated by A (Section 5.1)
        assert pdg.cspdg.equiv_dominated("CL.0") == ["CL.9"]
        assert pdg.cspdg.equiv_dominated("CL.9") == []
        assert pdg.cspdg.equiv_dominated("BL2") == ["CL.6"]
        assert pdg.cspdg.equiv_dominated("CL.6") == []

    def test_are_equivalent(self, pdg):
        assert pdg.cspdg.are_equivalent("CL.0", "CL.9")
        assert not pdg.cspdg.are_equivalent("CL.0", "BL2")


class TestSolidEdges:
    def test_bl1_successors(self, pdg):
        # Figure 4: edges from BL1 to BL2, BL4 (TRUE) and BL6, BL8 (FALSE)
        succs = set(pdg.cspdg.successors("CL.0"))
        assert succs == {"BL2", "CL.6", "CL.4", "CL.11"}

    def test_leaf_blocks_have_no_successors(self, pdg):
        for leaf in ("BL3", "BL5", "BL7", "BL9", "CL.9"):
            assert pdg.cspdg.successors(leaf) == []

    def test_test_blocks_control_their_arms(self, pdg):
        assert pdg.cspdg.successors("BL2") == ["BL3"]
        assert pdg.cspdg.successors("CL.6") == ["BL5"]


class TestSpeculationDegree:
    def test_useful_is_zero_branch(self, pdg):
        # "useful scheduling is 0-branch speculative"
        assert pdg.cspdg.speculation_degree("CL.0", "CL.9") == 0
        assert pdg.cspdg.speculation_degree("BL2", "CL.6") == 0

    def test_one_branch_from_bl1(self, pdg):
        # "when moving instructions from BL8 to BL1, we gamble on the
        # outcome of a single branch"
        assert pdg.cspdg.speculation_degree("CL.0", "CL.11") == 1
        assert pdg.cspdg.speculation_degree("CL.0", "BL2") == 1

    def test_two_branches_from_bl1_to_bl5(self, pdg):
        # "moving from BL5 to BL1 gambles on the outcome of two branches"
        assert pdg.cspdg.speculation_degree("CL.0", "BL5") == 2
        assert pdg.cspdg.speculation_degree("CL.0", "BL3") == 2

    def test_downward_motion_has_no_degree(self, pdg):
        # no CSPDG path from BL5 back up to BL1's controllers
        assert pdg.cspdg.speculation_degree("BL5", "BL2") is None


def test_format_output(figure2):
    from repro.machine import rs6k
    pdg = RegionPDG(figure2, rs6k(), list(figure2.blocks), "CL.0")
    text = pdg.cspdg.format()
    assert "CL.0 ~~(equiv)~~> CL.9" in text
    assert "--[" in text
