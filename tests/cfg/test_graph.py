"""ControlFlowGraph (ENTRY/EXIT augmentation) tests."""

from repro.cfg import ControlFlowGraph, ENTRY, EXIT
from repro.ir import parse_function


def test_entry_edge(figure2):
    cfg = ControlFlowGraph(figure2)
    assert cfg.succs(ENTRY) == ["CL.0"]
    assert cfg.preds("CL.0") == [ENTRY, "CL.9"]


def test_fallthrough_exit(figure2):
    # CL.9's conditional branch falls off the function end
    cfg = ControlFlowGraph(figure2)
    assert EXIT in cfg.succs("CL.9")


def test_ret_exit():
    func = parse_function("function f\na:\n    RET r1\n")
    cfg = ControlFlowGraph(func)
    assert cfg.succs("a") == [EXIT]


def test_multiple_exits():
    func = parse_function("""
function f
a:
    C cr0=r1,r2
    BT early,cr0,0x1/lt
b:
    RET r1
early:
    RET r2
""")
    cfg = ControlFlowGraph(func)
    exits = [l for l in cfg.block_labels() if EXIT in cfg.succs(l)]
    assert sorted(exits) == ["b", "early"]


def test_reachable_blocks_excludes_virtual(figure2):
    cfg = ControlFlowGraph(figure2)
    reached = cfg.reachable_blocks()
    assert ENTRY not in reached and EXIT not in reached
    assert reached == set(cfg.block_labels())


def test_unreachable_block_not_reached():
    func = parse_function("""
function f
a:
    RET r1
island:
    RET r2
""")
    cfg = ControlFlowGraph(func)
    assert "island" not in cfg.reachable_blocks()
    # but it is still a node with an EXIT edge
    assert EXIT in cfg.succs("island")
