"""Dominator/postdominator tests, cross-checked against networkx."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import (
    ControlFlowGraph,
    Digraph,
    ENTRY,
    EXIT,
    dominator_tree,
    postdominator_tree,
)


class TestFigure2Dominance:
    """Definitions 1-3 checked against the paper's own statements."""

    def test_bl1_dominates_everything(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        for label in cfg.block_labels():
            assert dom.dominates("CL.0", label)

    def test_bl10_postdominates_everything(self, figure2):
        cfg = ControlFlowGraph(figure2)
        pdom = postdominator_tree(cfg.graph, EXIT)
        for label in cfg.block_labels():
            assert pdom.dominates("CL.9", label)

    def test_equivalent_pairs(self, figure2):
        # "BL1 and BL10 are equivalent ... BL2 and BL4 are equivalent"
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        pdom = postdominator_tree(cfg.graph, EXIT)
        for a, b in [("CL.0", "CL.9"), ("BL2", "CL.6"), ("CL.4", "CL.11")]:
            assert dom.dominates(a, b) and pdom.dominates(b, a)

    def test_non_equivalent_pair(self, figure2):
        # BL3 (max=u) does not postdominate BL2
        cfg = ControlFlowGraph(figure2)
        pdom = postdominator_tree(cfg.graph, EXIT)
        assert not pdom.dominates("BL3", "BL2")

    def test_dominance_is_reflexive_and_antisymmetric(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        labels = cfg.block_labels()
        for a in labels:
            assert dom.dominates(a, a)
            for b in labels:
                if a != b and dom.dominates(a, b):
                    assert not dom.dominates(b, a)

    def test_dominators_of_walks_to_root(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        chain = dom.dominators_of("CL.9")
        assert chain[0] == "CL.9"
        assert chain[-1] == ENTRY
        assert "CL.0" in chain

    def test_children_partition(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        seen = set()
        stack = [ENTRY]
        while stack:
            node = stack.pop()
            assert node not in seen
            seen.add(node)
            stack.extend(dom.children(node))
        assert seen == set(dom.nodes)


@st.composite
def random_flow_graph(draw):
    """A random rooted digraph (cycles allowed), root 0."""
    n = draw(st.integers(min_value=2, max_value=10))
    edges = set()
    # spanning structure to keep things reachable
    for dst in range(1, n):
        edges.add((draw(st.integers(min_value=0, max_value=dst - 1)), dst))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=n * 2,
    ))
    edges.update((a, b) for a, b in extra if a != b)
    return n, sorted(edges)


@given(random_flow_graph())
@settings(max_examples=60)
def test_idoms_match_networkx(data):
    n, edges = data
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    for src, dst in edges:
        g.add_edge(src, dst)
    dom = dominator_tree(g, 0)

    nxg = nx.DiGraph(edges)
    nxg.add_nodes_from(range(n))
    expected = nx.immediate_dominators(nxg, 0)
    for node in dom.nodes:
        if node == 0:
            assert dom.idom(node) is None
        else:
            assert dom.idom(node) == expected[node]


@given(random_flow_graph())
@settings(max_examples=40)
def test_dominates_agrees_with_path_definition(data):
    """Definition 1: A dominates B iff A is on every path ENTRY->B."""
    n, edges = data
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    for src, dst in edges:
        g.add_edge(src, dst)
    dom = dominator_tree(g, 0)

    nxg = nx.DiGraph(edges)
    nxg.add_nodes_from(range(n))
    reachable = set(nx.descendants(nxg, 0)) | {0}
    for a in reachable:
        for b in reachable:
            # removing a strictly-dominating node must disconnect b
            if a in (0, b):
                continue
            pruned = nxg.copy()
            pruned.remove_node(a)
            still_reachable = b in (set(nx.descendants(pruned, 0)) | {0})
            assert dom.dominates(a, b) == (not still_reachable)
