"""Tests for back edges, natural loops, nesting, reducibility."""

from repro.cfg import (
    ControlFlowGraph,
    Digraph,
    ENTRY,
    LoopNest,
    back_edges,
    dominator_tree,
    is_reducible,
    natural_loop,
)
from repro.ir import parse_function


def nested_loops_func():
    return parse_function("""
function nested
outerH:
    NOP
innerH:
    NOP
innerL:
    C cr0=r1,r2
    BT innerH,cr0,0x1/lt
outerL:
    C cr1=r1,r3
    BT outerH,cr1,0x1/lt
done:
    RET
""")


class TestFigure2Loop:
    def test_single_back_edge(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        assert back_edges(cfg.graph, dom) == [("CL.9", "CL.0")]

    def test_loop_body_is_all_ten_blocks(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        nest = LoopNest(cfg.graph, dom)
        assert len(nest.loops) == 1
        loop = nest.loops[0]
        assert loop.header == "CL.0"
        assert loop.body == set(cfg.block_labels())
        assert loop.latches == ["CL.9"]
        assert loop.depth == 1 and loop.is_innermost

    def test_reducible(self, figure2):
        cfg = ControlFlowGraph(figure2)
        dom = dominator_tree(cfg.graph, ENTRY)
        assert is_reducible(cfg.graph, dom)


class TestNesting:
    def test_two_level_nest(self):
        func = nested_loops_func()
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        nest = LoopNest(cfg.graph, dom)
        assert len(nest.loops) == 2
        inner = nest.loop_with_header("innerH")
        outer = nest.loop_with_header("outerH")
        assert inner.parent is outer
        assert outer.children == [inner]
        assert inner.depth == 2 and outer.depth == 1
        assert inner.is_innermost and not outer.is_innermost

    def test_innermost_first_order(self):
        func = nested_loops_func()
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        nest = LoopNest(cfg.graph, dom)
        order = nest.loops_innermost_first()
        assert [l.header for l in order] == ["innerH", "outerH"]

    def test_innermost_containing(self):
        func = nested_loops_func()
        cfg = ControlFlowGraph(func)
        dom = dominator_tree(cfg.graph, ENTRY)
        nest = LoopNest(cfg.graph, dom)
        assert nest.innermost_containing("innerL").header == "innerH"
        assert nest.innermost_containing("outerL").header == "outerH"
        assert nest.innermost_containing("done") is None


class TestIrreducible:
    def test_irreducible_graph_detected(self):
        # classic two-entry cycle: 0 -> {1, 2}, 1 <-> 2
        g = Digraph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        dom = dominator_tree(g, 0)
        assert not is_reducible(g, dom)

    def test_natural_loop_of_self_edge(self):
        g = Digraph()
        g.add_edge(0, 1)
        g.add_edge(1, 1)
        assert natural_loop(g, 1, 1) == {1}

    def test_shared_header_loops_merge(self):
        # two back edges into one header
        g = Digraph()
        for e in [(0, 1), (1, 2), (1, 3), (2, 1), (3, 1), (1, 4)]:
            g.add_edge(*e)
        dom = dominator_tree(g, 0)
        nest = LoopNest(g, dom)
        assert len(nest.loops) == 1
        assert nest.loops[0].body == {1, 2, 3}
        assert sorted(nest.loops[0].latches) == [2, 3]
