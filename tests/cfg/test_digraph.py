"""Tests for the generic digraph utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cfg import Digraph


def diamond() -> Digraph:
    g = Digraph()
    for edge in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
        g.add_edge(*edge)
    return g


class TestBasics:
    def test_nodes_preserve_insertion_order(self):
        g = diamond()
        assert g.nodes == ["a", "b", "c", "d"]

    def test_parallel_edges_collapse(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.succs("a") == ["b"]
        assert g.preds("b") == ["a"]

    def test_reversed(self):
        g = diamond().reversed()
        assert set(g.succs("d")) == {"b", "c"}
        assert g.succs("a") == []
        assert set(g.preds("a")) == {"b", "c"}

    def test_subgraph(self):
        g = diamond().subgraph(["a", "b", "d"])
        assert g.nodes == ["a", "b", "d"]
        assert g.succs("a") == ["b"]  # a->c dropped

    def test_reachable(self):
        g = diamond()
        g.add_node("island")
        assert g.reachable_from("a") == {"a", "b", "c", "d"}
        assert g.reachable_from("island") == {"island"}


class TestOrders:
    def test_postorder_ends_at_root(self):
        order = diamond().postorder("a")
        assert order[-1] == "a"
        assert set(order) == {"a", "b", "c", "d"}

    def test_rpo_starts_at_root(self):
        assert diamond().rpo("a")[0] == "a"

    def test_topological_order(self):
        order = diamond().topological_order("a")
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_topological_order_rejects_cycle(self):
        g = diamond()
        g.add_edge("d", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order("a")


@st.composite
def random_dag_edges(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = []
    for dst in range(1, n):
        for src in range(dst):
            if draw(st.booleans()):
                edges.append((src, dst))
    # ensure connectivity from 0
    for dst in range(1, n):
        if not any(e[1] == dst for e in edges):
            edges.append((0, dst))
    return n, edges


@given(random_dag_edges())
def test_topological_order_is_valid_on_random_dags(data):
    n, edges = data
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    for src, dst in edges:
        g.add_edge(src, dst)
    order = g.topological_order(0)
    pos = {node: i for i, node in enumerate(order)}
    for src, dst in edges:
        if src in pos and dst in pos:
            assert pos[src] < pos[dst]


@given(random_dag_edges())
def test_postorder_parents_after_children(data):
    n, edges = data
    g = Digraph()
    for i in range(n):
        g.add_node(i)
    for src, dst in edges:
        g.add_edge(src, dst)
    post = g.postorder(0)
    pos = {node: i for i, node in enumerate(post)}
    for src, dst in edges:
        if src in pos and dst in pos:
            # on a DAG, every successor appears before its predecessor
            assert pos[dst] < pos[src]
