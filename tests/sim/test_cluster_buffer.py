"""Simulator semantics of the PR-8 machine-zoo extensions.

* clustered-FU machines: per-cluster per-cycle issue caps bind even when
  the flat unit counts would allow a wider issue group;
* exposed-datapath machines: full result buffers delay the next producer
  by the drain penalty, consuming reads free slots, and stale results
  (retired by the background writeback port) evict for free.
"""

from __future__ import annotations

from repro.ir import UnitType, parse_function
from repro.machine import MachineModel, buffers, cluster
from repro.machine.configs import clustered, exposed_datapath
from repro.sim import simulate_trace

FOUR_INDEPENDENT = """
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
    LI r4=4
"""


def _block(text: str):
    func = parse_function(text)
    return [func.blocks[0]]


class TestClusteredIssue:
    def _machine(self, *clusters) -> MachineModel:
        total = sum(c.unit_count(UnitType.FXU) for c in clusters)
        return MachineModel(name="c", units={UnitType.FXU: total},
                            clusters=clusters)

    def test_flat_machine_packs_four_wide(self):
        machine = MachineModel(name="flat", units={UnitType.FXU: 4})
        result = simulate_trace(_block(FOUR_INDEPENDENT), machine)
        assert result.issue_cycles == [0, 0, 0, 0]

    def test_cluster_caps_bind_below_unit_counts(self):
        # same 4 FXUs, but one cluster may only start 1/cycle: the fourth
        # instruction finds both clusters' issue ports exhausted
        machine = self._machine(cluster("c0", {UnitType.FXU: 2}, 1),
                                cluster("c1", {UnitType.FXU: 2}, 2))
        result = simulate_trace(_block(FOUR_INDEPENDENT), machine)
        assert result.issue_cycles == [0, 0, 0, 1]

    def test_matching_cluster_widths_are_transparent(self):
        # per-cluster widths equal to the cluster's unit counts change
        # nothing relative to the flat machine
        machine = self._machine(cluster("c0", {UnitType.FXU: 2}, 2),
                                cluster("c1", {UnitType.FXU: 2}, 2))
        result = simulate_trace(_block(FOUR_INDEPENDENT), machine)
        assert result.issue_cycles == [0, 0, 0, 0]

    def test_cluster_usage_resets_each_cycle(self):
        machine = self._machine(cluster("c0", {UnitType.FXU: 1}, 1),
                                cluster("c1", {UnitType.FXU: 1}, 1))
        text = """
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
    LI r4=4
"""
        result = simulate_trace(_block(text), machine)
        assert result.issue_cycles == [0, 0, 1, 1]

    def test_shipped_clustered_config_never_beats_flat(self):
        # the clustered zoo entry is a pure timing refinement: it can only
        # be slower than the same units without cluster caps
        machine = clustered()
        flat = MachineModel(name="flat", units=dict(machine.units),
                            delays=machine.delays,
                            exec_times=dict(machine.exec_times))
        blocks = _block(FOUR_INDEPENDENT)
        assert (simulate_trace(blocks, machine).cycles
                >= simulate_trace(blocks, flat).cycles)


class TestBufferedUnits:
    def _machine(self, capacity=1, drain_penalty=2,
                 free_after=100) -> MachineModel:
        return MachineModel(
            name="b", units={UnitType.FXU: 2},
            buffers=buffers({UnitType.FXU: capacity},
                            drain_penalty=drain_penalty,
                            free_after=free_after))

    def test_hot_overflow_charges_drain_penalty(self):
        # capacity 1, nothing consumes r1: the second producer must drain
        # a still-hot result and pays the penalty on its issue
        result = simulate_trace(_block("""
function f
a:
    LI r1=1
    LI r2=2
"""), self._machine())
        # both LIs would pack at cycle 0 on the 2 FXUs; the drain pushes
        # the second producer out by drain_penalty
        assert result.issue_cycles == [0, 2]
        assert result.buffer_drains == 1

    def test_consuming_read_frees_the_slot(self):
        # AI reads r1, releasing its buffer slot before defining r2
        result = simulate_trace(_block("""
function f
a:
    LI r1=1
    AI r2=r1,1
"""), self._machine())
        assert result.buffer_drains == 0

    def test_stale_results_evict_free(self):
        # free_after=0: the background writeback port has always retired
        # the result already, so overflow never costs anything
        result = simulate_trace(_block("""
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
"""), self._machine(free_after=0))
        assert result.buffer_drains == 0
        assert result.issue_cycles == [0, 0, 1]

    def test_zero_penalty_still_counts_drains(self):
        result = simulate_trace(_block("""
function f
a:
    LI r1=1
    LI r2=2
"""), self._machine(drain_penalty=0))
        assert result.buffer_drains == 1
        assert result.issue_cycles == [0, 0]  # counted, but free

    def test_capacity_two_absorbs_two_producers(self):
        result = simulate_trace(_block("""
function f
a:
    LI r1=1
    LI r2=2
"""), self._machine(capacity=2))
        assert result.buffer_drains == 0

    def test_shipped_xdp_config_runs(self):
        machine = exposed_datapath()
        result = simulate_trace(_block(FOUR_INDEPENDENT), machine)
        assert result.cycles >= 1
        assert result.buffer_drains >= 0
