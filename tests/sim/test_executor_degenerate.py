"""Degenerate programs the executor must survive (robustness PR satellite).

The functional interpreter is the correctness oracle the whole verify
stack leans on, so its behaviour on pathological inputs matters: an
empty function must execute zero steps (not crash), a single-block
infinite loop must hit the step cap with :class:`ExecutionError`, and a
block containing only a branch must route control without touching any
architectural state.
"""

from __future__ import annotations

import pytest

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operand import CR_GT, parse_reg
from repro.sim.executor import ExecutionError, execute


def test_empty_function_executes_zero_steps():
    func = Function("empty")
    result = execute(func)
    assert result.steps == 0
    assert result.block_trace == []
    assert result.instr_trace == []
    assert result.return_value is None
    assert result.regs == {}
    assert result.memory == {}


def test_function_with_one_empty_block():
    func = Function("hollow")
    func.add_block("entry.0")
    result = execute(func)
    assert result.block_trace == ["entry.0"]
    assert result.steps == 0
    assert result.return_value is None


def test_single_block_infinite_loop_hits_step_cap():
    func = Function("spin")
    block = func.add_block("CL.0")
    func.emit(block, Instruction(Opcode.B, target="CL.0"))
    with pytest.raises(ExecutionError, match="exceeded 64 steps"):
        execute(func, max_steps=64)


def test_infinite_loop_with_body_hits_step_cap():
    r1 = parse_reg("r1")
    func = Function("spin_add")
    block = func.add_block("CL.0")
    func.emit(block, Instruction(Opcode.AI, defs=(r1,), uses=(r1,), imm=1))
    func.emit(block, Instruction(Opcode.B, target="CL.0"))
    with pytest.raises(ExecutionError, match="infinite loop"):
        execute(func, max_steps=100)


def test_branch_only_block_routes_without_state_changes():
    cr0 = parse_reg("cr0")
    r2 = parse_reg("r2")
    func = Function("route")
    hub = func.add_block("hub.0")
    func.emit(hub, Instruction(Opcode.BT, uses=(cr0,), target="out.1",
                               mask=CR_GT))
    skipped = func.add_block("skip.2")
    func.emit(skipped, Instruction(Opcode.LI, defs=(r2,), imm=99))
    out = func.add_block("out.1")
    func.emit(out, Instruction(Opcode.RET, uses=(r2,)))

    taken = execute(func, regs={cr0: CR_GT})
    assert taken.block_trace == ["hub.0", "out.1"]
    assert taken.return_value == 0  # skip.2 never wrote r2
    assert taken.memory == {}

    fallthrough = execute(func, regs={cr0: 0})
    assert fallthrough.block_trace == ["hub.0", "skip.2", "out.1"]
    assert fallthrough.return_value == 99


def test_last_block_falls_off_the_end():
    r1 = parse_reg("r1")
    func = Function("dropout")
    block = func.add_block("entry.0")
    func.emit(block, Instruction(Opcode.LI, defs=(r1,), imm=7))
    result = execute(func)
    # no RET: execution ends after the last block with no return value
    assert result.return_value is None
    assert result.reg(r1) == 7
