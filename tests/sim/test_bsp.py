"""The BSP DAG cost model: bound components, oracle verdicts, soundness.

The lower bound must be provable against the simulator's issue rules, so
the core property here is *soundness*: across the whole machine zoo, on
hand traces, bench programs and generated programs, simulated cycles
never beat the bound.  Tightness is not required (the bound ignores
in-order blocking), but the hand traces pin each component -- work,
width, depth -- where it is exact.
"""

from __future__ import annotations

import pytest

from repro.bench.programs import MINMAX_WORKLOAD
from repro.compiler import compile_c
from repro.ir import parse_function
from repro.machine import CONFIGS, MachineModel, rs6k, superscalar
from repro.machine.model import UnitType
from repro.sim import bsp_bound, check_bsp, simulate_trace


def _trace(text: str, machine) -> tuple[list, int]:
    func = parse_function(text)
    blocks = list(func.blocks)
    result = simulate_trace(blocks, machine)
    trace = [ins for block in blocks for ins in block.instrs]
    return trace, result.cycles

CHAIN = """
function f
a:
    LI r1=1
    AI r2=r1,1
    AI r3=r2,1
"""

INDEPENDENT = """
function f
a:
    LI r1=1
    LI r2=2
    LI r3=3
    LI r4=4
"""


class TestBoundComponents:
    def test_depth_bounds_a_dependence_chain(self):
        machine = superscalar(8)
        trace, cycles = _trace(CHAIN, machine)
        bound = bsp_bound(trace, machine)
        # LI result is consumable next cycle, so each link adds 1
        assert bound.depth == 3
        assert bound.lower_bound == 3
        assert cycles == 3  # exact here

    def test_work_bounds_unit_pressure(self):
        machine = MachineModel(name="one", units={UnitType.FXU: 1})
        trace, cycles = _trace(INDEPENDENT, machine)
        bound = bsp_bound(trace, machine)
        assert dict(bound.work)["FXU"] == 4
        assert bound.lower_bound == 4
        assert cycles == 4

    def test_width_bounds_total_issue(self):
        machine = MachineModel(name="capped", units={UnitType.FXU: 4},
                               issue_width=2)
        trace, cycles = _trace(INDEPENDENT, machine)
        bound = bsp_bound(trace, machine)
        assert bound.width == 2
        assert bound.lower_bound == 2
        assert cycles == 2

    def test_folded_branch_consumes_no_slot(self):
        machine = rs6k()
        func = parse_function("""
function f
a:
    LI r1=1
    B b
b:
    LI r2=2
""")
        trace = [ins for block in func.blocks for ins in block.instrs]
        folded = bsp_bound(trace, machine, branch_folding=True)
        unfolded = bsp_bound(trace, machine, branch_folding=False)
        assert folded.slots == 2
        assert unfolded.slots == 3

    def test_branches_delimit_supersteps(self):
        machine = rs6k()
        func = parse_function("""
function f
a:
    LI r1=1
    B b
b:
    LI r2=2
""")
        trace = [ins for block in func.blocks for ins in block.instrs]
        bound = bsp_bound(trace, machine)
        assert bound.supersteps == 2
        assert bound.estimate >= bound.supersteps

    def test_empty_trace(self):
        bound = bsp_bound([], rs6k())
        assert bound.lower_bound == 0
        assert bound.estimate == 0
        assert check_bsp([], rs6k(), 0).ok


class TestOracleVerdicts:
    def _setup(self):
        machine = rs6k()
        trace, cycles = _trace(CHAIN, machine)
        return machine, trace, cycles

    def test_honest_count_passes(self):
        machine, trace, cycles = self._setup()
        check = check_bsp(trace, machine, cycles)
        assert check.ok, check.format()

    def test_beating_the_bound_fails(self):
        machine, trace, _cycles = self._setup()
        check = check_bsp(trace, machine, 1)
        assert not check.ok
        assert "beat the BSP lower bound" in check.format()

    def test_drifting_beyond_tolerance_fails(self):
        machine, trace, _cycles = self._setup()
        check = check_bsp(trace, machine, 10 ** 9)
        assert not check.ok
        assert "drift beyond" in check.format()

    def test_tolerance_is_configurable(self):
        machine, trace, cycles = self._setup()
        tight = check_bsp(trace, machine, cycles + 100,
                          slack=1.0, headroom=0)
        assert not tight.ok


class TestSoundnessAcrossTheZoo:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_minmax_never_beats_the_bound(self, name):
        machine = CONFIGS[name]()
        unit = compile_c(MINMAX_WORKLOAD.source, machine=machine)
        entry = unit[MINMAX_WORKLOAD.entry]
        run = entry.run([5, 3, 9, 1, 7, 2], 4, [0, 0])
        check = check_bsp(run.execution.instr_trace, machine, run.cycles)
        assert run.cycles >= check.bound.lower_bound
        assert check.ok, check.format()

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_hand_traces_never_beat_the_bound(self, name):
        machine = CONFIGS[name]()
        for text in (CHAIN, INDEPENDENT):
            trace, cycles = _trace(text, machine)
            assert cycles >= bsp_bound(trace, machine).lower_bound
