"""Instruction-cache model tests."""

import pytest

from repro.ir import parse_function
from repro.machine import rs6k
from repro.sim import (
    ICacheConfig,
    SimConfig,
    TraceSimulator,
    layout_addresses,
    simulate_execution,
)


def tiny_loop(body_instrs: int) -> str:
    lines = ["function f", "pre:", "    LI r1=0", "loop:"]
    for i in range(body_instrs):
        lines.append(f"    AI r{2 + (i % 4)}=r{2 + (i % 4)},1")
    lines += ["    AI r1=r1,1", "    C cr0=r1,r9",
              "    BT loop,cr0,0x1/lt", "done:", "    RET r2"]
    return "\n".join(lines)


class TestICacheConfig:
    def test_line_count(self):
        assert ICacheConfig(size=1024, line=64).lines == 16
        assert ICacheConfig(size=32, line=64).lines == 1


class TestMisses:
    def run(self, source, n, icache):
        func = parse_function(source)
        from repro.ir import gpr
        config = SimConfig(icache=icache)
        _res, timing = simulate_execution(
            func, rs6k(), regs={gpr(9): n}, config=config)
        return timing

    def test_perfect_cache_by_default(self):
        timing = self.run(tiny_loop(4), 10, icache=None)
        assert timing.icache_misses == 0

    def test_cold_misses_once_loop_resident(self):
        # a loop that fits: cold misses on first touch, then none
        timing = self.run(tiny_loop(4), 50,
                          icache=ICacheConfig(size=1024, line=32))
        footprint_lines = (timing.instructions and 2) or 0
        assert 1 <= timing.icache_misses <= 4  # cold lines only

    def test_thrashing_when_loop_exceeds_cache(self):
        # loop body bigger than the whole cache: misses every iteration
        big = tiny_loop(40)  # ~44 instructions * 4B > 64B cache
        cold = self.run(big, 20, icache=ICacheConfig(size=64, line=32))
        assert cold.icache_misses > 20

    def test_misses_cost_cycles(self):
        source = tiny_loop(4)
        fast = self.run(source, 30, icache=None)
        slow = self.run(source, 30,
                        icache=ICacheConfig(size=32, line=32,
                                            miss_penalty=10))
        assert slow.cycles > fast.cycles
        assert slow.icache_misses > 0


class TestDuplicationCost:
    def test_code_growth_can_cost_cache_misses(self):
        # the paper's duplication worry, made concrete: with a cache just
        # big enough for the original loop, the duplicated version thrashes
        from repro import ScheduleLevel, compile_c
        from repro.xform import PipelineConfig

        source = """
int f(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int v = a[i];
        int w = 0;
        if (v < 0) { w = 1 - v; } else { w = v + 3; }
        s = s + w * w;
    }
    return s;
}
"""
        sizes = {}
        for allow in (False, True):
            config = PipelineConfig(level=ScheduleLevel.SPECULATIVE,
                                    allow_duplication=allow)
            result = compile_c(source, level=ScheduleLevel.SPECULATIVE,
                               config=config)
            sizes[allow] = result["f"].func.size()
        assert sizes[True] > sizes[False]  # code really grew


def test_addresses_cover_every_instruction(figure2):
    addresses = layout_addresses(figure2)
    assert len(addresses) == figure2.size()
    assert sorted(addresses.values()) == [4 * i for i in range(20)]
