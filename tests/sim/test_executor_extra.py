"""Executor coverage for the less-travelled opcodes."""

import pytest

from repro.ir import fpr, gpr, parse_function
from repro.sim import ExecutionError, execute


def run(text, regs=None, memory=None):
    return execute(parse_function("function t\na:\n" + text),
                   regs=regs or {}, memory=memory or {})


class TestFloatOps:
    """The FPU ops run on integer values (the paper concentrates on fixed
    point; the float pipeline exists for the machine model's sake)."""

    def test_fl_fst_round_trip(self):
        res = run("""
    LI r1=100
    FL f1=(r1,0)
    FA f2=f1,f1
    FST f2=>(r1,8)
    RET r1
""", memory={100: 21})
        assert res.memory[108] == 42

    def test_fmr_and_arith(self):
        res = run("""
    LI r1=100
    FL f1=(r1,0)
    FMR f2=f1
    FS f3=f2,f1
    FM f4=f2,f2
    RET r1
""", memory={100: 6})
        assert res.regs[fpr(3)] == 0
        assert res.regs[fpr(4)] == 36

    def test_fd_division(self):
        res = run("""
    LI r1=100
    FL f1=(r1,0)
    FL f2=(r1,4)
    FD f3=f1,f2
    RET r1
""", memory={100: -9, 104: 2})
        assert res.regs[fpr(3)] == -4  # truncation toward zero

    def test_fc_compare(self):
        from repro.ir import CR_LT
        res = run("""
    LI r1=100
    FL f1=(r1,0)
    FL f2=(r1,4)
    FC cr2=f1,f2
    RET r1
""", memory={100: 1, 104: 5})
        from repro.ir import cr
        assert res.regs[cr(2)] == CR_LT


class TestStoreUpdate:
    def test_stu_stores_then_increments(self):
        res = run("""
    LI r1=100
    LI r2=7
    STU r2,r1=>(r1,4)
    RET r1
""")
        assert res.memory[104] == 7  # store at base+disp
        assert res.return_value == 104  # base post-incremented

    def test_stu_loop_fills_array(self):
        func = parse_function("""
function fill
a:
    LI r1=96
    LI r2=0
    LI r3=3
    MTCTR ctr=r3
loop:
    AI r2=r2,5
    STU r2,r1=>(r1,4)
    BDNZ loop
done:
    RET r2
""")
        res = execute(func)
        assert [res.memory[100 + 4 * i] for i in range(3)] == [5, 10, 15]


class TestMisc:
    def test_nop_does_nothing(self):
        res = run("    LI r1=5\n    NOP\n    RET r1\n")
        assert res.return_value == 5

    def test_ret_without_value(self):
        res = run("    LI r1=5\n    RET\n")
        assert res.return_value is None

    def test_immediate_logical_forms(self):
        res = run("""
    LI r1=12
    ANDI r2=r1,10
    ORI  r3=r1,3
    XORI r4=r1,6
    RET r2
""")
        assert res.return_value == 8
        assert res.regs[gpr(3)] == 15
        assert res.regs[gpr(4)] == 10

    def test_rem_matches_c_semantics(self):
        res = run("""
    LI r1=7
    LI r2=-2
    REM r3=r1,r2
    RET r3
""")
        assert res.return_value == 1  # 7 % -2 == 1 in C (trunc division)
        with pytest.raises(ExecutionError, match="remainder"):
            run("    LI r1=1\n    LI r2=0\n    REM r3=r1,r2\n")

    def test_instr_trace_matches_steps(self, figure2):
        res = execute(figure2, regs={gpr(31): 96, gpr(29): 5, gpr(27): 3},
                      memory={})
        assert len(res.instr_trace) == res.steps
