"""Functional-executor tests."""

import pytest

from repro.ir import Builder, CR_EQ, CR_GT, CR_LT, Function, cr, gpr, parse_function
from repro.sim import ExecutionError, compare_bits, execute, wrap32


class TestPrimitives:
    def test_wrap32(self):
        assert wrap32(0) == 0
        assert wrap32(2**31 - 1) == 2**31 - 1
        assert wrap32(2**31) == -(2**31)
        assert wrap32(-(2**31) - 1) == 2**31 - 1
        assert wrap32(2**32) == 0

    def test_compare_bits(self):
        assert compare_bits(1, 2) == CR_LT
        assert compare_bits(2, 1) == CR_GT
        assert compare_bits(5, 5) == CR_EQ
        assert compare_bits(-1, 0) == CR_LT


class TestArithmetic:
    def run_one(self, text, regs=None, memory=None):
        func = parse_function("function t\na:\n" + text)
        return execute(func, regs=regs or {}, memory=memory or {})

    def test_basic_ops(self):
        res = self.run_one("""
    LI r1=6
    LI r2=7
    MUL r3=r1,r2
    A  r4=r3,r1
    S  r5=r4,r2
    RET r5
""")
        assert res.return_value == 6 * 7 + 6 - 7

    def test_division_truncates_toward_zero(self):
        res = self.run_one("""
    LI r1=-7
    LI r2=2
    DIV r3=r1,r2
    REM r4=r1,r2
    RET r3
""")
        assert res.return_value == -3  # C semantics, not Python floor
        assert res.reg(gpr(4)) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            self.run_one("    LI r1=1\n    LI r2=0\n    DIV r3=r1,r2\n")

    def test_shifts(self):
        res = self.run_one("""
    LI r1=-8
    SRA r2=r1,1
    SR  r3=r1,1
    SL  r4=r1,1
    RET r2
""")
        assert res.return_value == -4
        assert res.reg(gpr(3)) == (0xFFFFFFF8 >> 1)
        assert res.reg(gpr(4)) == wrap32(-16)

    def test_logic(self):
        res = self.run_one("""
    LI r1=12
    LI r2=10
    AND r3=r1,r2
    OR  r4=r1,r2
    XOR r5=r1,r2
    NOT r6=r1
    NEG r7=r1
    RET r3
""")
        assert res.return_value == 8
        assert res.reg(gpr(4)) == 14
        assert res.reg(gpr(5)) == 6
        assert res.reg(gpr(6)) == ~12
        assert res.reg(gpr(7)) == -12

    def test_overflow_wraps(self):
        res = self.run_one("""
    LI r1=2147483647
    AI r2=r1,1
    RET r2
""")
        assert res.return_value == -(2**31)


class TestMemory:
    def test_load_store(self):
        res = execute(parse_function("""
function m
a:
    LI r1=100
    LI r2=42
    ST r2=>(r1,0)
    L  r3=(r1,0)
    RET r3
"""))
        assert res.return_value == 42
        assert res.memory[100] == 42

    def test_load_update_order(self):
        # LU loads from base+disp FIRST, then post-increments (Figure 2)
        res = execute(parse_function("""
function m
a:
    LI r1=100
    LU r2,r1=(r1,8)
    RET r2
"""), memory={108: 7, 100: 9})
        assert res.return_value == 7
        assert res.reg(gpr(1)) == 108

    def test_unset_memory_reads_zero(self):
        res = execute(parse_function(
            "function m\na:\n    LI r1=5000\n    L r2=(r1,0)\n    RET r2\n"))
        assert res.return_value == 0


class TestControlFlow:
    def test_branch_true_false(self):
        func = parse_function("""
function b
a:
    C cr0=r1,r2
    BT less,cr0,0x1/lt
notless:
    LI r3=0
    RET r3
less:
    LI r3=1
    RET r3
""")
        assert execute(func, regs={gpr(1): 1, gpr(2): 2}).return_value == 1
        assert execute(func, regs={gpr(1): 3, gpr(2): 2}).return_value == 0

    def test_counter_register_loop(self):
        func = parse_function("""
function ctrloop
a:
    LI r1=5
    MTCTR ctr=r1
    LI r2=0
body:
    AI r2=r2,3
    BDNZ body
done:
    RET r2
""")
        assert execute(func).return_value == 15

    def test_block_trace_recorded(self, figure2):
        res = execute(figure2, regs={
            gpr(31): 96, gpr(29): 1, gpr(27): 3, gpr(28): 0, gpr(30): 0,
        }, memory={100: 5, 104: 2})
        assert res.block_trace[0] == "CL.0"
        assert res.block_trace.count("CL.0") == 1  # one iteration (i=3=n)

    def test_runaway_loop_detected(self):
        func = parse_function("function x\na:\n    B a\n")
        with pytest.raises(ExecutionError, match="steps"):
            execute(func, max_steps=100)

    def test_call_handler_and_log(self):
        logged = []
        func = parse_function("""
function c
a:
    LI r1=3
    CALL r2=double(r1)
    RET r2
""")
        res = execute(func, call_handlers={
            "double": lambda args: logged.append(tuple(args)) or [args[0] * 2]
        })
        assert res.return_value == 6
        assert logged == [(3,)]
        assert res.calls == [("double", (3,))]

    def test_unhandled_call_is_noop(self):
        func = parse_function("""
function c
a:
    LI r2=9
    CALL r2=mystery(r2)
    RET r2
""")
        # no handler: defs keep their old values
        assert execute(func).return_value == 9
