"""Cycle-simulator tests, calibrated against the paper's own counts."""

import pytest

from repro.ir import parse_function
from repro.machine import rs6k, superscalar
from repro.sched import ScheduleLevel, global_schedule
from repro.sim import (
    SimConfig,
    TraceSimulator,
    simulate_path_iterations,
    simulate_trace,
)

#: the five acyclic paths through the minmax loop and their update counts
PATHS = {
    ("CL.0", "BL2", "CL.6", "CL.9"): 0,
    ("CL.0", "BL2", "BL3", "CL.6", "CL.9"): 1,
    ("CL.0", "BL2", "BL3", "CL.6", "BL5", "CL.9"): 2,
    ("CL.0", "CL.4", "CL.11", "CL.9"): 0,
    ("CL.0", "CL.4", "BL7", "CL.11", "BL9", "CL.9"): 2,
}


class TestPaperCycleCounts:
    def test_figure2_takes_20_21_22(self, figure2):
        # "we estimate that the code executes in 20, 21 or 22 cycles,
        # depending on if 0, 1 or 2 updates ... are done"
        for path, updates in PATHS.items():
            got = simulate_path_iterations(figure2, list(path), rs6k())
            assert got == 20 + updates, (path, got)

    def test_figure5_takes_12_to_13(self, figure2):
        global_schedule(figure2, rs6k(), ScheduleLevel.USEFUL)
        for path in PATHS:
            got = simulate_path_iterations(figure2, list(path), rs6k())
            assert 12 <= got <= 13, (path, got)

    def test_figure6_takes_11_to_12(self, figure2):
        global_schedule(figure2, rs6k(), ScheduleLevel.SPECULATIVE)
        for path in PATHS:
            got = simulate_path_iterations(figure2, list(path), rs6k())
            assert 11 <= got <= 12, (path, got)

    def test_figure6_beats_figure5_beats_figure2(self, figure2):
        import copy
        baseline = {p: simulate_path_iterations(figure2, list(p), rs6k())
                    for p in PATHS}
        from repro.ir import parse_function, format_function
        useful = parse_function(format_function(figure2))
        global_schedule(useful, rs6k(), ScheduleLevel.USEFUL)
        spec = parse_function(format_function(figure2))
        global_schedule(spec, rs6k(), ScheduleLevel.SPECULATIVE)
        for p in PATHS:
            u = simulate_path_iterations(useful, list(p), rs6k())
            s = simulate_path_iterations(spec, list(p), rs6k())
            assert s <= u < baseline[p]


class TestIssueModel:
    def test_in_order_blocking(self):
        # a stalled instruction blocks everything behind it
        func = parse_function("""
function f
a:
    L  r1=x(r9,0)
    AI r2=r1,1
    LI r3=7
""")
        result = simulate_trace([func.block("a")], rs6k())
        assert result.issue_cycles == [0, 2, 3]  # LI waits behind AI

    def test_dual_issue_fxu_bru(self):
        # fixed point and branch units run in parallel
        func = parse_function("""
function f
a:
    LI r1=1
    B  a
""")
        result = simulate_trace([func.block("a")], rs6k())
        # with folding, B costs nothing; without, it shares the cycle
        assert result.cycles == 1

    def test_one_instruction_per_unit_per_cycle(self):
        func = parse_function("""
function f
a:
    LI r1=1
    LI r2=2
""")
        result = simulate_trace([func.block("a")], rs6k())
        assert result.issue_cycles == [0, 1]

    def test_wider_fxu_packs(self):
        func = parse_function("""
function f
a:
    LI r1=1
    LI r2=2
""")
        result = simulate_trace([func.block("a")], superscalar(2))
        assert result.issue_cycles == [0, 0]

    def test_issue_width_cap(self):
        from repro.machine import scalar_pipelined
        func = parse_function("""
function f
a:
    LI r1=1
    C  cr0=r1,r2
    BT a,cr0,0x1/lt
""")
        result = simulate_trace([func.block("a")], scalar_pipelined())
        # one instruction per cycle overall; BT still waits out the
        # compare delay
        assert result.issue_cycles[0] == 0
        assert result.issue_cycles[1] == 1
        assert result.issue_cycles[2] == 5

    def test_interlocks_enforce_delays(self):
        func = parse_function("""
function f
a:
    C  cr0=r1,r2
    BT a,cr0,0x1/lt
""")
        result = simulate_trace([func.block("a")], rs6k())
        assert result.issue_cycles == [0, 4]  # exec 1 + delay 3

    def test_branch_folding_config(self):
        func = parse_function("""
function f
a:
    B b
b:
    B c
c:
    LI r1=1
""")
        blocks = list(func.blocks)
        folded = simulate_trace(blocks, rs6k(), SimConfig(branch_folding=True))
        unfolded = simulate_trace(blocks, rs6k(),
                                  SimConfig(branch_folding=False))
        assert folded.cycles < unfolded.cycles

    def test_missing_unit_is_an_error(self):
        from repro.ir import UnitType
        from repro.machine import MachineModel
        machine = MachineModel("nofpu", {UnitType.FXU: 1, UnitType.BRU: 1})
        func = parse_function("function f\na:\n    FA f1=f2,f3\n")
        with pytest.raises(ValueError, match="no FPU unit"):
            simulate_trace([func.block("a")], machine)

    def test_ipc(self):
        func = parse_function("function f\na:\n    LI r1=1\n    LI r2=2\n")
        result = simulate_trace([func.block("a")], rs6k())
        assert result.instructions == 2
        assert result.ipc == pytest.approx(1.0)


class TestPathIterations:
    def test_needs_two_iterations(self, figure2):
        with pytest.raises(ValueError):
            simulate_path_iterations(figure2, ["CL.0"], rs6k(), iterations=1)

    def test_steady_state_stable(self, figure2):
        path = ["CL.0", "BL2", "CL.6", "CL.9"]
        four = simulate_path_iterations(figure2, path, rs6k(), iterations=4)
        eight = simulate_path_iterations(figure2, path, rs6k(), iterations=8)
        assert four == eight
