"""Issue-timeline rendering tests."""

import pytest

from repro.ir import parse_function
from repro.machine import rs6k
from repro.sim import (
    format_timeline,
    issue_histogram,
    simulate_trace,
    stall_cycles,
)


@pytest.fixture
def bl1(figure2):
    block = figure2.block("CL.0")
    result = simulate_trace([block], rs6k())
    return block, result


def test_figure2_bl1_timeline(bl1):
    block, result = bl1
    text = format_timeline(block.instrs, result, rs6k())
    lines = text.splitlines()
    assert len(lines) == 1 + 4  # header + I1..I4
    # I3's compare occupies its issue cycle plus three delay cycles
    i3_line = next(l for l in lines if l.startswith("I3"))
    assert "X===" in i3_line
    # the branch issues at cycle 7 (the delay made visible)
    i4_line = next(l for l in lines if l.startswith("I4"))
    assert i4_line.rstrip().endswith("X")
    assert result.issue_cycles[-1] == 7


def test_histogram_and_stalls(bl1):
    _block, result = bl1
    hist = issue_histogram(result)
    assert sum(hist.values()) == 4
    # cycles 3..6 are bubbles while the compare->branch delay drains
    assert stall_cycles(result) == result.cycles - len(hist)
    assert stall_cycles(result) == 4


def test_mismatched_lengths_rejected(bl1):
    block, result = bl1
    with pytest.raises(ValueError, match="instructions vs"):
        format_timeline(block.instrs[:-1], result, rs6k())


def test_long_traces_truncate():
    func = parse_function(
        "function f\na:\n" + "\n".join(
            f"    LI r{i}=1" for i in range(1, 30)))
    block = func.block("a")
    result = simulate_trace([block], rs6k())
    text = format_timeline(block.instrs, result, rs6k(), max_cycles=10)
    assert len(text.splitlines()) == 1 + 10  # header + 10 rows shown
