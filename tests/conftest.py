"""Shared fixtures: the paper's Figure 2 program, golden files, helpers."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ir import Function, parse_function

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/golden/* from the current compiler output "
             "instead of comparing against it")


@pytest.fixture
def golden(request):
    """Compare ``text`` against ``tests/golden/<name>`` (or rewrite it
    under ``--update-goldens``)."""
    update = request.config.getoption("--update-goldens")

    def check(name: str, text: str) -> None:
        path = GOLDEN_DIR / name
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        assert path.exists(), (
            f"golden file {path} missing; run pytest --update-goldens")
        expected = path.read_text()
        assert text == expected, (
            f"output differs from golden {name}; if the change is "
            f"intended, rerun with --update-goldens")

    return check

#: The RS/6K pseudo-code of the paper's Figure 2 (the minmax loop), with
#: the paper's instruction numbers I1-I20 and basic blocks BL1-BL10.
FIGURE2 = """
function minmax_loop
CL.0:
    (I1)  L     r12=a(r31,4)       ; load u
    (I2)  LU    r0,r31=a(r31,8)    ; load v and increment index
    (I3)  C     cr7=r12,r0         ; u > v
    (I4)  BF    CL.4,cr7,0x2/gt
BL2:
    (I5)  C     cr6=r12,r30        ; u > max
    (I6)  BF    CL.6,cr6,0x2/gt
BL3:
    (I7)  LR    r30=r12            ; max = u
CL.6:
    (I8)  C     cr7=r0,r28         ; v < min
    (I9)  BF    CL.9,cr7,0x1/lt
BL5:
    (I10) LR    r28=r0             ; min = v
    (I11) B     CL.9
CL.4:
    (I12) C     cr6=r0,r30         ; v > max
    (I13) BF    CL.11,cr6,0x2/gt
BL7:
    (I14) LR    r30=r0             ; max = v
CL.11:
    (I15) C     cr7=r12,r28        ; u < min
    (I16) BF    CL.9,cr7,0x1/lt
BL9:
    (I17) LR    r28=r12            ; min = u
CL.9:
    (I18) AI    r29=r29,2          ; i = i+2
    (I19) C     cr4=r29,r27        ; i < n
    (I20) BT    CL.0,cr4,0x1/lt
"""

#: paper block name (Figure 3/4) -> label in FIGURE2
PAPER_BLOCKS = {
    "BL1": "CL.0", "BL2": "BL2", "BL3": "BL3", "BL4": "CL.6",
    "BL5": "BL5", "BL6": "CL.4", "BL7": "BL7", "BL8": "CL.11",
    "BL9": "BL9", "BL10": "CL.9",
}


@pytest.fixture
def figure2() -> Function:
    """A fresh parse of the Figure 2 loop."""
    return parse_function(FIGURE2)


def block_uids(func: Function) -> dict[str, list[int]]:
    """Map block label -> instruction uids in order (schedule shape)."""
    return {b.label: [ins.uid for ins in b.instrs] for b in func.blocks}
