"""The program generator: determinism, validity, and the safety rules the
grammar promises (termination, defined variables, in-bounds indices)."""

import pytest

from repro.compiler import compile_c
from repro.sched.candidates import ScheduleLevel
from repro.verify import generate_program
from repro.verify.generator import GenProgram, If, Line, Loop


def test_deterministic():
    a = generate_program(1234)
    b = generate_program(1234)
    assert a.source == b.source
    assert a.entry_args == b.entry_args


def test_distinct_seeds_differ():
    sources = {generate_program(s).source for s in range(8)}
    assert len(sources) > 1


@pytest.mark.parametrize("seed", range(25))
def test_generated_programs_compile_at_every_level(seed):
    program = generate_program(seed)
    for level in ScheduleLevel:
        compile_c(program.source, level=level)


@pytest.mark.parametrize("seed", range(10))
def test_generated_programs_run_to_completion(seed):
    """Every program terminates and returns within the step budget."""
    program = generate_program(seed)
    result = compile_c(program.source, level=ScheduleLevel.NONE)
    run = result.run(program.entry, *program.entry_args)
    assert isinstance(run.return_value, int)


def test_entry_args_match_signature():
    for seed in range(10):
        program = generate_program(seed)
        entry = next(f for f in program.functions
                     if f.name == program.entry)
        assert len(program.entry_args) == len(entry.params)
        for (kind, _), arg in zip(entry.params, program.entry_args):
            if kind == "array":
                assert isinstance(arg, list) and len(arg) == 8
            else:
                assert isinstance(arg, int)


def test_short_circuit_conditions_are_common():
    """The generator must exercise ||/&& shapes -- they are the CFGs where
    speculation bugs hide."""
    hits = sum(
        1 for seed in range(30)
        if "||" in generate_program(seed).source
        or "&&" in generate_program(seed).source
    )
    assert hits >= 15


def _walk(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then)
            yield from _walk(stmt.els)
        elif isinstance(stmt, Loop):
            yield from _walk(stmt.body)


def _continues_under_while(stmts, innermost=None):
    for stmt in stmts:
        if isinstance(stmt, Line):
            if stmt.text == "continue;" and innermost == "while":
                yield stmt
        elif isinstance(stmt, If):
            yield from _continues_under_while(stmt.then, innermost)
            yield from _continues_under_while(stmt.els, innermost)
        elif isinstance(stmt, Loop):
            kind = "while" if stmt.head.startswith("while") else "for"
            yield from _continues_under_while(stmt.body, kind)


def test_while_loops_never_contain_continue():
    """`continue` whose innermost loop is a while would skip the counter
    decrement and loop forever; the generator only emits it under `for`."""
    for seed in range(60):
        program = generate_program(seed)
        for fn in program.functions:
            assert not list(_continues_under_while(fn.body))


def test_render_roundtrip_is_stable():
    program = generate_program(77)
    assert program.source == GenProgram(
        seed=program.seed,
        functions=program.functions,
        entry=program.entry,
        entry_args=program.entry_args,
    ).source
