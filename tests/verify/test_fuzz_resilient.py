"""Resilient fuzz campaigns: quarantine, timeouts, checkpoint/resume.

A campaign must be able to outlive a misbehaving program: a crash or
per-program timeout is retried once (with backoff) and then *parked* in
``report.quarantined`` while the sweep continues.  A checkpointed
campaign interrupted mid-run and resumed must produce result lists
byte-identical to an uninterrupted run's, for any ``jobs`` value.
"""

from __future__ import annotations

import dataclasses
import importlib
import json

import pytest

from repro.resilience import CheckpointError
from repro.verify import fuzz
from repro.verify.fuzz import derive_seed

fuzz_module = importlib.import_module("repro.verify.fuzz")

CAMPAIGN_N = 6
CAMPAIGN_SEED = 424242


def _keys(report):
    return ([(f.index, f.seed, f.detail) for f in report.failures],
            [dataclasses.astuple(q) for q in report.quarantined])


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setattr(fuzz_module, "_RETRY_BACKOFF_S", 0.001)


# -- quarantine ---------------------------------------------------------------

class TestQuarantine:
    def test_crash_is_retried_then_parked_and_campaign_continues(
            self, monkeypatch):
        boom_seed = derive_seed(CAMPAIGN_SEED, 2)
        real_generate = fuzz_module.generate_program
        calls = []

        def exploding_generate(seed):
            if seed == boom_seed:
                calls.append(seed)
                raise RuntimeError("persistent crash")
            return real_generate(seed)

        monkeypatch.setattr(fuzz_module, "generate_program",
                            exploding_generate)
        report = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False)
        assert report.attempted == CAMPAIGN_N
        assert len(report.quarantined) == 1
        parked = report.quarantined[0]
        assert parked.index == 2
        assert parked.seed == boom_seed
        assert parked.reason == "crash"
        assert parked.attempts == 2  # first run + one retry
        assert "persistent crash" in parked.detail
        assert len(calls) == 2
        assert "1 quarantined" in report.summary()
        assert "quarantined #2" in parked.format()

    def test_transient_crash_recovers_on_the_retry(self, monkeypatch):
        boom_seed = derive_seed(CAMPAIGN_SEED, 1)
        real_generate = fuzz_module.generate_program
        failed_once = []

        def flaky_generate(seed):
            if seed == boom_seed and not failed_once:
                failed_once.append(seed)
                raise RuntimeError("transient crash")
            return real_generate(seed)

        monkeypatch.setattr(fuzz_module, "generate_program", flaky_generate)
        report = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False)
        assert report.attempted == CAMPAIGN_N
        assert not report.quarantined  # the retry absorbed it

    def test_timeout_quarantines_with_reason(self, monkeypatch):
        from repro.resilience import BudgetExceeded

        slow_seed = derive_seed(CAMPAIGN_SEED, 3)
        real_generate = fuzz_module.generate_program

        def hanging_generate(seed):
            if seed == slow_seed:
                # model the watchdog firing without burning wall clock
                raise BudgetExceeded(f"fuzz:program-3", 0.01, 0.02)
            return real_generate(seed)

        monkeypatch.setattr(fuzz_module, "generate_program",
                            hanging_generate)
        report = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False,
                      timeout_s=30.0)
        assert [q.reason for q in report.quarantined] == ["timeout"]
        assert report.attempted == CAMPAIGN_N

    def test_real_timeout_fires_on_a_hung_program(self, monkeypatch):
        slow_seed = derive_seed(CAMPAIGN_SEED, 0)
        real_generate = fuzz_module.generate_program

        def sleepy_generate(seed):
            if seed == slow_seed:
                while True:
                    pass
            return real_generate(seed)

        monkeypatch.setattr(fuzz_module, "generate_program", sleepy_generate)
        report = fuzz(1, CAMPAIGN_SEED, shrink=False, timeout_s=0.2)
        assert [q.index for q in report.quarantined] == [0]
        assert report.quarantined[0].reason == "timeout"
        assert report.quarantined[0].attempts == 2


# -- checkpoint / resume ------------------------------------------------------

class TestCheckpointResume:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupted_resume_matches_uninterrupted(self, tmp_path, jobs):
        """ISSUE acceptance criterion: interrupt after 2 programs, resume,
        and compare against the straight-through run byte for byte."""
        straight = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=jobs)

        path = str(tmp_path / "campaign.json")
        partial = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=jobs,
                       checkpoint_path=path, interrupt_after=2)
        assert partial.attempted == 2
        resumed = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=jobs,
                       checkpoint_path=path, resume_path=path)
        assert resumed.attempted == CAMPAIGN_N
        assert _keys(resumed) == _keys(straight)
        assert resumed.metric_summaries == straight.metric_summaries
        lines = (tmp_path / "campaign.json").read_text().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == 2
        assert sorted(json.loads(l)["done"] for l in lines[1:]) \
            == list(range(CAMPAIGN_N))

    def test_resume_with_mismatched_params_is_a_typed_error(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        fuzz(3, CAMPAIGN_SEED, shrink=False, checkpoint_path=path)
        with pytest.raises(CheckpointError, match="different campaign"):
            fuzz(3, CAMPAIGN_SEED + 1, shrink=False, resume_path=path)
        with pytest.raises(CheckpointError, match="different campaign"):
            fuzz(5, CAMPAIGN_SEED, shrink=False, resume_path=path)

    def test_resume_from_corrupt_file_is_a_typed_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            fuzz(3, CAMPAIGN_SEED, shrink=False, resume_path=str(path))
        with pytest.raises(CheckpointError, match="cannot read"):
            fuzz(3, CAMPAIGN_SEED, shrink=False,
                 resume_path=str(tmp_path / "missing.json"))

    def test_resume_of_finished_campaign_runs_nothing(self, tmp_path,
                                                      monkeypatch):
        path = str(tmp_path / "campaign.json")
        first = fuzz(3, CAMPAIGN_SEED, shrink=False, checkpoint_path=path)

        def no_generate(seed):  # resuming a finished run must not compile
            raise AssertionError("generate_program called on full resume")

        monkeypatch.setattr(fuzz_module, "generate_program", no_generate)
        resumed = fuzz(3, CAMPAIGN_SEED, shrink=False, resume_path=path)
        assert resumed.attempted == 3
        assert _keys(resumed) == _keys(first)

    def test_torn_final_line_is_tolerated_and_rerun(self, tmp_path):
        """ISSUE satellite: the v2 checkpoint is a JSONL WAL, so a
        ``kill -9`` can tear at most the final entry -- resume drops it,
        re-runs that index, and still matches the straight-through run."""
        straight = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False)
        path = tmp_path / "campaign.json"
        fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False,
             checkpoint_path=str(path), interrupt_after=3)
        torn = path.read_text()[:-7]  # cut into the final entry
        assert not torn.endswith("\n")
        path.write_text(torn)
        resumed = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False,
                       checkpoint_path=str(path), resume_path=str(path))
        assert resumed.attempted == CAMPAIGN_N
        assert _keys(resumed) == _keys(straight)
        # and the rewritten WAL is whole again
        lines = path.read_text().splitlines()
        assert sorted(json.loads(l)["done"] for l in lines[1:]) \
            == list(range(CAMPAIGN_N))

    def test_damage_before_the_tail_is_a_typed_error(self, tmp_path):
        path = tmp_path / "campaign.json"
        fuzz(3, CAMPAIGN_SEED, shrink=False, checkpoint_path=str(path))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # tear a *non-final* entry
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            fuzz(3, CAMPAIGN_SEED, shrink=False, resume_path=str(path))

    def test_v1_single_document_checkpoint_still_resumes(self, tmp_path):
        """Checkpoints written by earlier releases load unchanged."""
        first = fuzz(3, CAMPAIGN_SEED, shrink=False)
        state = {"version": 1, "master_seed": CAMPAIGN_SEED, "n": 3,
                 "machines": ["rs6k", "scalar", "ss2"], "shrink": False,
                 "collect_metrics": False, "done": [0, 1, 2],
                 "failures": [dataclasses.asdict(f) for f in first.failures],
                 "quarantined": [], "metric_summaries": []}
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(state))
        resumed = fuzz(3, CAMPAIGN_SEED, shrink=False,
                       resume_path=str(path))
        assert resumed.attempted == 3
        assert _keys(resumed) == _keys(first)

    def test_quarantined_results_survive_the_checkpoint(self, tmp_path,
                                                        monkeypatch):
        boom_seed = derive_seed(CAMPAIGN_SEED, 0)
        real_generate = fuzz_module.generate_program

        def exploding_generate(seed):
            if seed == boom_seed:
                raise RuntimeError("checkpointed crash")
            return real_generate(seed)

        monkeypatch.setattr(fuzz_module, "generate_program",
                            exploding_generate)
        path = str(tmp_path / "campaign.json")
        fuzz(4, CAMPAIGN_SEED, shrink=False, checkpoint_path=path,
             interrupt_after=2)
        resumed = fuzz(4, CAMPAIGN_SEED, shrink=False, resume_path=path)
        assert [q.index for q in resumed.quarantined] == [0]
        assert resumed.attempted == 4
