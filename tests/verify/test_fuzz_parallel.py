"""Parallel fuzz campaigns: determinism, validation and crash handling.

Campaign results must be a pure function of ``(seed, n)``: the sorted
failure list is identical for every ``--jobs`` value.  A worker that
*crashes* (as opposed to finding a differential failure) must surface as
:class:`FuzzWorkerError` with the failing index and the worker traceback,
never hang the pool or silently drop the program.
"""

from __future__ import annotations

import importlib

import pytest

from repro.__main__ import main as cli_main
from repro.verify import FuzzWorkerError, fuzz
from repro.verify.fuzz import derive_seed

#: the submodule itself (``repro.verify`` re-exports the ``fuzz``
#: *function* under the same name, shadowing the module attribute)
fuzz_module = importlib.import_module("repro.verify.fuzz")

CAMPAIGN_N = 6
CAMPAIGN_SEED = 424242


def _failure_keys(report):
    return [(f.index, f.seed, f.detail) for f in report.failures]


def test_parallel_campaign_matches_serial():
    serial = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False)
    parallel = fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=2)
    assert parallel.attempted == serial.attempted == CAMPAIGN_N
    assert _failure_keys(parallel) == _failure_keys(serial)


def test_parallel_progress_counts_every_program():
    seen = []
    fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=2,
         on_progress=lambda done, failures: seen.append(done))
    assert seen == list(range(1, CAMPAIGN_N + 1))


@pytest.mark.parametrize("jobs", [0, -1, -4])
def test_invalid_jobs_rejected(jobs):
    with pytest.raises(ValueError, match="jobs must be a positive"):
        fuzz(3, 1, jobs=jobs)


def test_worker_crash_surfaces_as_fuzz_worker_error(monkeypatch):
    boom_seed = derive_seed(CAMPAIGN_SEED, 2)
    real_generate = fuzz_module.generate_program

    def exploding_generate(seed):
        if seed == boom_seed:
            raise RuntimeError("injected worker crash")
        return real_generate(seed)

    # fork-based workers inherit the patched module, so the crash happens
    # inside the pool and must be relayed back with its traceback
    # (quarantine=False selects the legacy fail-fast behaviour)
    monkeypatch.setattr(fuzz_module, "generate_program", exploding_generate)
    with pytest.raises(FuzzWorkerError) as excinfo:
        fuzz(CAMPAIGN_N, CAMPAIGN_SEED, shrink=False, jobs=2,
             quarantine=False)
    assert excinfo.value.index == 2
    assert "injected worker crash" in excinfo.value.worker_traceback


def test_serial_crash_propagates_directly(monkeypatch):
    def exploding_generate(seed):
        raise RuntimeError("injected serial crash")

    monkeypatch.setattr(fuzz_module, "generate_program", exploding_generate)
    with pytest.raises(RuntimeError, match="injected serial crash"):
        fuzz(2, CAMPAIGN_SEED, shrink=False, quarantine=False)


def test_cli_rejects_bad_jobs(capsys):
    assert cli_main(["fuzz", "--n", "1", "--jobs", "0"]) == 2
    assert "--jobs must be a positive integer" in capsys.readouterr().err


def test_cli_reproduce_ignores_jobs(capsys):
    code = cli_main(["fuzz", "--reproduce", f"{CAMPAIGN_SEED}:0",
                     "--jobs", "3", "--no-shrink"])
    captured = capsys.readouterr()
    assert "single-process" in captured.err
    assert code in (0, 1)  # pass or genuine differential failure
