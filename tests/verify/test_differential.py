"""Differential runner and shrinker behaviour (fast, non-fuzzing tests)."""

from repro.sched.candidates import ScheduleLevel
from repro.verify import generate_program, run_differential, shrink_program
from repro.verify.differential import ComboResult, DiffResult
from repro.verify.fuzz import derive_seed, fuzz, reproduce
from repro.verify.generator import GenFunction, GenProgram, Line


def test_matrix_shape_and_pass():
    program = generate_program(3)
    result = run_differential(program, machines=("rs6k", "scalar"))
    assert result.ok, result.format_failures()
    assert len(result.combos) == 2 * 3  # machines x levels
    assert all(c.error is None for c in result.combos)
    # cycle counts are recorded for every combo
    assert result.cycles("rs6k", ScheduleLevel.NONE) > 0


def test_observations_identical_across_matrix():
    program = generate_program(11)
    result = run_differential(program)
    baseline = result.combos[0]
    for combo in result.combos[1:]:
        assert combo.observation == baseline.observation


def test_differential_flags_divergent_observation():
    """A fabricated divergence must be reported (guards the comparator
    itself, not the compiler)."""
    program = generate_program(5)
    result = run_differential(program)
    assert result.ok
    result.combos[3].return_value = (result.combos[0].return_value or 0) + 1
    rebuilt = DiffResult(program=program, combos=result.combos)
    _recompare(rebuilt)
    assert not rebuilt.ok


def _recompare(result: DiffResult) -> None:
    baseline = result.combos[0]
    for combo in result.combos[1:]:
        if combo.observation != baseline.observation:
            result.failures.append("diverged")


def _tiny_program(body_lines, ret="return a0;"):
    fn = GenFunction("test", [("int", "a0")],
                     [Line(t) for t in body_lines], final_return=ret)
    return GenProgram(seed=0, functions=[fn], entry="test", entry_args=[7])


def test_shrink_removes_irrelevant_statements():
    """Predicate: 'the program still contains the marker statement'.
    Everything else must shrink away."""
    program = _tiny_program([
        "int v1 = a0 + 1;",
        "int v2 = a0 * 3;",
        "int marker = 42;",
        "int v3 = v2 - 2;",
    ])

    def still_fails(candidate):
        return "marker" in candidate.source

    small = shrink_program(program, still_fails)
    assert "marker" in small.source
    body = small.functions[0].body
    assert len(body) == 1  # only the marker survived


def test_shrink_rejects_broken_variants():
    """Deleting the decl a later statement uses must not stick: the
    predicate (which compiles) throws, the variant is discarded."""
    from repro.compiler import compile_c

    program = _tiny_program([
        "int v1 = a0 + 1;",
        "int v2 = v1 * v1;",
    ], ret="return v2;")

    def still_fails(candidate):
        compile_c(candidate.source)  # raises on dangling references
        return "v2" in candidate.source

    small = shrink_program(program, still_fails)
    compile_c(small.source)
    assert "v2" in small.source


def test_fuzz_campaign_is_deterministic_and_reproducible():
    report_a = fuzz(4, seed=99, machines=("rs6k",), shrink=False)
    report_b = fuzz(4, seed=99, machines=("rs6k",), shrink=False)
    assert report_a.attempted == report_b.attempted == 4
    assert report_a.ok and report_b.ok
    # reproduce() regenerates the identical program
    program = reproduce(99, 2, machines=("rs6k",))
    assert program.seed == derive_seed(99, 2)
    assert program.source == generate_program(derive_seed(99, 2)).source


def test_combo_result_observation_tuple():
    combo = ComboResult(machine="rs6k", level=ScheduleLevel.NONE,
                        return_value=4, arrays=[[1]], calls=[("f", (2,))])
    assert combo.observation == (4, [[1]], [("f", (2,))])
