"""The static schedule verifier: clean passes, hand-made violations, and
mutation smoke tests (a deliberately broken scheduler heuristic must be
caught)."""

import pytest

from repro.bench.programs import MINMAX_C
from repro.compiler import compile_c
from repro.machine.rs6k import rs6k
from repro.sched.candidates import ScheduleLevel
from repro.sched.ready import DependenceState
from repro.sched.speculation import LiveOnExitTracker
from repro.verify import ScheduleVerificationError, verify_schedule
from repro.xform.pipeline import PipelineConfig

TWO_ARMS = """
int f(int c) {
    int x = 0;
    if (c > 0) { x = 5; } else { x = 3; }
    return x;
}
"""

CHAIN = """
int f(int a, int p[]) {
    p[0] = a + 3;
    int x = p[0] * 2;
    p[1] = x - a;
    return p[1] + x;
}
"""

DISJUNCTION = """
int g(int a, int b, int p[]) {
    int x = 1;
    if (a > 0 || b > 0) { x = (p[0] + 7) * b; }
    return x;
}
"""


def verified_config(level, **kwargs):
    return PipelineConfig(level=level, verify=True, **kwargs)


@pytest.mark.parametrize("level", list(ScheduleLevel))
@pytest.mark.parametrize("source", [TWO_ARMS, CHAIN, DISJUNCTION, MINMAX_C])
def test_clean_schedules_verify(source, level):
    result = compile_c(source, level=level,
                       config=verified_config(level))
    for unit in result:
        assert unit.report.verify_reports, "verify=True produced no reports"
        for report in unit.report.verify_reports:
            assert report.ok


def test_identity_schedule_verifies():
    """before == after with no motions is trivially legal."""
    result = compile_c(TWO_ARMS, level=ScheduleLevel.NONE)
    func = result["f"].func
    report = verify_schedule(func.clone(), func, rs6k(),
                             level=ScheduleLevel.NONE)
    assert report.ok
    assert report.checked_edges > 0


def test_clone_preserves_uids_and_counters():
    func = compile_c(TWO_ARMS, level=ScheduleLevel.NONE)["f"].func
    copy = func.clone()
    assert [b.label for b in copy.blocks] == [b.label for b in func.blocks]
    for ours, theirs in zip(func.instructions(), copy.instructions()):
        assert ours.uid == theirs.uid
        assert ours is not theirs
    assert copy._next_uid == func._next_uid
    fresh_a, fresh_b = func.new_gpr(), copy.new_gpr()
    assert fresh_a == fresh_b  # counters advanced in lockstep


def test_vanished_instruction_is_reported():
    func = compile_c(CHAIN, level=ScheduleLevel.NONE)["f"].func
    before = func.clone()
    block = func.entry
    victim = block.body[0]
    block.remove(victim)
    report = verify_schedule(before, func, rs6k(),
                             level=ScheduleLevel.NONE,
                             raise_on_error=False)
    assert any(i.kind == "conservation" and i.uid == victim.uid
               for i in report.issues)


def test_reordered_flow_dependence_is_reported():
    func = compile_c(CHAIN, level=ScheduleLevel.NONE)["f"].func
    before = func.clone()
    block = func.entry
    body = block.body
    # swap two body instructions that carry a dependence
    for i in range(len(body) - 1):
        a, b = body[i], body[i + 1]
        if set(a.reg_defs()) & set(b.reg_uses()):
            block.instrs.remove(a)
            block.instrs.insert(block.index_of(b) + 1, a)
            break
    else:
        pytest.skip("no adjacent dependent pair")
    report = verify_schedule(before, func, rs6k(),
                             level=ScheduleLevel.NONE,
                             raise_on_error=False)
    assert any(i.kind == "dependence" for i in report.issues)


STORE_IF = """
int h(int c, int p[]) {
    int x = c * 2;
    if (c > 0) { p[0] = c + 1; }
    return x;
}
"""


def test_illegal_cross_block_move_is_reported():
    """Manually hoisting a store above its branch is never legal (stores
    may not be executed speculatively)."""
    func = compile_c(STORE_IF, level=ScheduleLevel.NONE)["h"].func
    before = func.clone()
    store = next(ins for ins in func.instructions()
                 if ins.writes_memory)
    home = next(b for b in func.blocks if store in b.instrs)
    home.remove(store)
    func.entry.insert_before_terminator(store)
    report = verify_schedule(before, func, rs6k(),
                             level=ScheduleLevel.SPECULATIVE,
                             raise_on_error=False)
    assert any(i.kind == "placement" for i in report.issues)


def test_local_pass_must_not_move_across_blocks():
    func = compile_c(TWO_ARMS, level=ScheduleLevel.NONE)["f"].func
    before = func.clone()
    movable = next(ins for ins in func.blocks[1].body
                   if ins.opcode.can_move_globally)
    func.blocks[1].remove(movable)
    func.entry.insert_before_terminator(movable)
    report = verify_schedule(before, func, rs6k(),
                             level=ScheduleLevel.NONE,
                             raise_on_error=False)
    assert any(i.kind == "placement" and "local-only" in i.message
               for i in report.issues)


# -- mutation smoke tests: break the scheduler, expect the verifier to bite


def test_mutated_liveness_rule_is_caught(monkeypatch):
    """Disable Section 5.3's live-on-exit test: both arms' definitions
    hoist above the branch and the replay must reject the second one."""
    monkeypatch.setattr(LiveOnExitTracker, "blocks_motion",
                        lambda self, ins, target: False)
    with pytest.raises(ScheduleVerificationError) as exc:
        compile_c(TWO_ARMS, level=ScheduleLevel.SPECULATIVE,
                  config=verified_config(ScheduleLevel.SPECULATIVE,
                                         rename_on_demand=False))
    assert any(i.kind == "speculation" for i in exc.value.report.issues)


def test_mutated_dependence_rule_is_caught(monkeypatch):
    """A scheduler that believes every instruction is always ready emits
    dependence-inverted code; the verifier must reject it.  Both readiness
    authorities are broken: the dict state (scan/reference engines) and
    the dense block pass's predecessor counters."""
    from repro.sched import bb_sched

    monkeypatch.setattr(DependenceState, "deps_satisfied",
                        lambda self, ins: True)
    monkeypatch.setattr(bb_sched, "_initial_blocked",
                        lambda dense: [0] * dense.n)
    with pytest.raises(ScheduleVerificationError) as exc:
        compile_c(CHAIN, level=ScheduleLevel.SPECULATIVE,
                  config=verified_config(ScheduleLevel.SPECULATIVE))
    assert any(i.kind == "dependence" for i in exc.value.report.issues)


def test_mutated_dominance_rule_is_caught(monkeypatch):
    """Regression guard for the Definition 6 dominance requirement: if
    every block claims to dominate every other, speculative candidates
    leak across non-dominated joins and the verifier must notice."""
    from repro.cfg.dominators import DominatorTree

    monkeypatch.setattr(DominatorTree, "strictly_dominates",
                        lambda self, a, b: True)
    with pytest.raises(ScheduleVerificationError):
        compile_c(DISJUNCTION, level=ScheduleLevel.SPECULATIVE,
                  config=verified_config(ScheduleLevel.SPECULATIVE))
