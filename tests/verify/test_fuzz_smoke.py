"""Fuzz smoke campaign: 100 generated programs, fixed seed, full
level x machine differential matrix with the schedule verifier on.

Marked ``slow`` (roughly a minute): deselect locally with
``pytest -m 'not slow'``; CI always runs it.
"""

import pytest

from repro.verify import fuzz

pytestmark = pytest.mark.slow


def test_fuzz_100_programs_fixed_seed():
    # jobs=2 exercises the worker-pool path; the failure list is
    # guaranteed identical to a serial campaign (see repro.verify.fuzz)
    report = fuzz(100, seed=1991, shrink=False, jobs=2)
    assert report.attempted == 100
    assert report.ok, "\n\n".join(f.format() for f in report.failures)
