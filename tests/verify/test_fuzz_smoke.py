"""Fuzz smoke campaign: 100 generated programs, fixed seed, full
level x machine differential matrix with the schedule verifier on.

Marked ``slow`` (roughly a minute): deselect locally with
``pytest -m 'not slow'``; CI always runs it.
"""

import pytest

from repro.verify import fuzz

pytestmark = pytest.mark.slow


def test_fuzz_100_programs_fixed_seed():
    # jobs=2 exercises the worker-pool path; the failure list is
    # guaranteed identical to a serial campaign (see repro.verify.fuzz)
    report = fuzz(100, seed=1991, shrink=False, jobs=2)
    assert report.attempted == 100
    assert report.ok, "\n\n".join(f.format() for f in report.failures)


class TestMetricSummaries:
    def test_collected_per_program(self):
        from repro.verify.fuzz import fuzz

        report = fuzz(3, 7, shrink=False, collect_metrics=True)
        assert [s["index"] for s in report.metric_summaries] == [0, 1, 2]
        for summary in report.metric_summaries:
            assert summary["ready_max"] >= 1
            assert summary["motions_speculative"] >= 0

    def test_off_by_default(self):
        from repro.verify.fuzz import fuzz

        report = fuzz(1, 7, shrink=False)
        assert report.metric_summaries == []

    def test_parallel_matches_sequential(self):
        from repro.verify.fuzz import fuzz

        seq = fuzz(4, 7, shrink=False, collect_metrics=True)
        par = fuzz(4, 7, shrink=False, collect_metrics=True, jobs=2)
        assert par.metric_summaries == seq.metric_summaries
